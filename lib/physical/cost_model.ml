module Pg = Xqp_algebra.Pattern_graph

type engine = Naive_nav | Nok_navigation | Twig_join | Binary_joins

let all_engines = [ Naive_nav; Nok_navigation; Twig_join; Binary_joins ]

let engine_name = function
  | Naive_nav -> "navigation"
  | Nok_navigation -> "nok"
  | Twig_join -> "twigstack"
  | Binary_joins -> "binary-join"

(* Delegates to each engine's own capability predicate so that the cost
   model, the planner and the engines themselves cannot disagree about
   what runs where. *)
let supports pattern = function
  | Twig_join -> Twig_stack.supported pattern
  | Nok_navigation -> Nok.supported pattern
  | Binary_joins -> Binary_join.supported pattern
  | Naive_nav -> true

let stream_size stats pattern v =
  if v = 0 then 1.0
  else
    let vx = Pg.vertex pattern v in
    match vx.Pg.label with
    | Pg.Tag name -> float_of_int (Statistics.tag_count stats name)
    | Pg.Wildcard -> float_of_int (Statistics.element_count stats)

let vertices pattern = List.init (Pg.vertex_count pattern) (fun v -> v)

(* Estimated intermediate tuples after joining a connected subset S of
   vertices: under independence, ≈ max over v∈S of card(v) × amplification
   of many-to-one arcs; we approximate by the product of per-arc output
   sizes divided by shared-vertex cardinalities — standard chain estimate:
   |join over arcs A| ≈ Π_{(p,c)∈A} pairs(p,c) / Π_{v internal} card(v). *)
let arc_pairs stats pattern (s, t) =
  let rel =
    match List.find_opt (fun (s', t', _) -> s' = s && t' = t) (Pg.arcs pattern) with
    | Some (_, _, rel) -> rel
    | None -> Pg.Child
  in
  let parent_label = if s = 0 then Pg.Wildcard else (Pg.vertex pattern s).Pg.label in
  let child_label = (Pg.vertex pattern t).Pg.label in
  let raw =
    if s = 0 then
      match rel with
      | Pg.Descendant -> stream_size stats pattern t
      | Pg.Child | Pg.Attribute -> 1.0
      | Pg.Following_sibling -> 0.0
    else Statistics.estimate_rel stats rel ~parent:parent_label ~child:child_label
  in
  let selectivity =
    List.fold_left
      (fun acc pred -> acc *. Statistics.predicate_selectivity pred)
      1.0 (Pg.vertex pattern t).Pg.predicates
  in
  Float.max 0.0 (raw *. selectivity)

let estimate_join_order stats pattern order =
  let cost = ref 0.0 in
  let bound = ref [] in
  let tuples = ref 0.0 in
  List.iteri
    (fun i (s, t) ->
      let left = stream_size stats pattern s and right = stream_size stats pattern t in
      let pairs = arc_pairs stats pattern (s, t) in
      if i = 0 then tuples := pairs
      else begin
        (* joining the pair list against current tuples through the shared
           vertex: tuples × pairs / card(shared) *)
        let shared = if List.mem s !bound then s else t in
        let shared_card = Float.max 1.0 (stream_size stats pattern shared) in
        tuples := !tuples *. pairs /. shared_card
      end;
      bound := s :: t :: !bound;
      cost := !cost +. left +. right +. !tuples)
    order;
  !cost

(* Greedy order construction: repeatedly append the connected arc with the
   cheapest resulting prefix. O(arcs^2) estimate calls — planning must stay
   far below execution cost (exhaustive search over all orders is used only
   by the E5 ground-truth study). *)
let best_join_order stats pattern =
  let arcs = List.map (fun (s, t, _) -> (s, t)) (Pg.arcs pattern) in
  let connected chosen (s, t) =
    chosen = []
    || List.exists (fun (s', t') -> s' = s || s' = t || t' = s || t' = t) chosen
  in
  let rec build chosen remaining =
    if remaining = [] then List.rev chosen
    else begin
      let candidates = List.filter (connected chosen) remaining in
      let candidates = if candidates = [] then remaining else candidates in
      let score arc = estimate_join_order stats pattern (List.rev (arc :: chosen)) in
      let best =
        List.fold_left
          (fun (ba, bc) arc ->
            let c = score arc in
            if c < bc then (arc, c) else (ba, bc))
          (List.hd candidates, score (List.hd candidates))
          (List.tl candidates)
      in
      let arc = fst best in
      build (arc :: chosen) (List.filter (fun a -> a <> arc) remaining)
    end
  in
  build [] arcs

let estimate stats pattern engine =
  match engine with
  | Binary_joins -> estimate_join_order stats pattern (best_join_order stats pattern)
  | Twig_join ->
    (* scan all streams + emit path solutions ≈ Σ streams + Σ output *)
    let streams = List.fold_left (fun acc v -> acc +. stream_size stats pattern v) 0.0 (vertices pattern) in
    streams +. Statistics.estimate_result stats pattern
  | Nok_navigation ->
    (* per fragment: index scan for the candidate roots + store navigation
       over the fragment (≈ the navigational cost of its local arcs, times
       a constant for the succinct store's slower primitives) + structural
       semijoins on the links *)
    let store_factor = 3.0 in
    let parts = Nok_partition.partition pattern in
    let fanout = Float.max 1.0 (Statistics.avg_fanout stats) in
    let member_nav_cost v =
      match Pg.parent pattern v with
      | Some (p, (Pg.Child | Pg.Attribute | Pg.Following_sibling)) ->
        Statistics.estimate_vertex_cardinality stats pattern p *. fanout
      | Some (_, Pg.Descendant) | None -> 0.0
    in
    let fragment_cost f =
      let roots =
        if f.Nok_partition.root = 0 then 0.0 else stream_size stats pattern f.Nok_partition.root
      in
      let nav =
        List.fold_left
          (fun acc v -> acc +. member_nav_cost v)
          0.0
          (List.filter (fun v -> v <> f.Nok_partition.root) f.Nok_partition.members)
      in
      roots +. (store_factor *. nav)
    in
    let link_cost (src, dst) =
      Statistics.estimate_vertex_cardinality stats pattern src
      +. stream_size stats pattern dst
    in
    List.fold_left (fun acc f -> acc +. fragment_cost f) 0.0 parts.Nok_partition.fragments
    +. List.fold_left (fun acc l -> acc +. link_cost l) 0.0 parts.Nok_partition.links
  | Naive_nav ->
    (* Σ over vertices of nodes visited: a child/attribute/sibling step
       scans the context's children; a descendant step scans the whole
       subtree of every context node — approximated by the document's
       element count (so chains of // steps pay it repeatedly, the paper's
       navigational scalability complaint). *)
    let fanout = Float.max 1.0 (Statistics.avg_fanout stats) in
    List.fold_left
      (fun acc v ->
        if v = 0 then acc
        else
          match Pg.parent pattern v with
          | Some (p, (Pg.Child | Pg.Attribute | Pg.Following_sibling)) ->
            acc +. (Statistics.estimate_vertex_cardinality stats pattern p *. fanout)
          | None -> acc +. fanout
          | Some (p, Pg.Descendant) ->
            let contexts = Float.max 1.0 (Statistics.estimate_vertex_cardinality stats pattern p) in
            acc +. Float.min
                     (contexts *. float_of_int (Statistics.element_count stats))
                     (float_of_int (Statistics.element_count stats) *. 4.0))
      0.0 (vertices pattern)

(* --- plan-level cardinality estimation --------------------------------- *)

module Lp = Xqp_algebra.Logical_plan

(* Estimated output cardinality of each plan operator, the "est" column
   of [explain]. Steps multiply the base cardinality by the average
   per-node fan-out of the (axis, test) relation — derived from the same
   tag-pair statistics the engine chooser uses — capped by the target
   tag's total count; τ defers to {!Statistics.estimate_result}. *)
let rec estimate_plan stats ?(context_card = 1.0) plan =
  let est p = estimate_plan stats ~context_card p in
  match (plan : Lp.t) with
  | Lp.Root -> 1.0
  | Lp.Context -> context_card
  | Lp.Union (a, b) -> est a +. est b
  | Lp.Tpm (base, pattern) ->
    if est base <= 0.0 then 0.0 else Statistics.estimate_result stats pattern
  | Lp.Step (base, s) ->
    let base_card = est base in
    let elements = Float.max 1.0 (float_of_int (Statistics.element_count stats)) in
    let label_total = function
      | Lp.Name n -> float_of_int (Statistics.tag_count stats n)
      | Lp.Any | Lp.Text_node -> elements
    in
    let rel_estimate rel =
      let child =
        match s.Lp.test with Lp.Name n -> Pg.Tag n | Lp.Any | Lp.Text_node -> Pg.Wildcard
      in
      let pairs = Statistics.estimate_rel stats rel ~parent:Pg.Wildcard ~child in
      Float.min (base_card *. (pairs /. elements)) (label_total s.Lp.test)
    in
    let nav =
      match s.Lp.axis with
      | Xqp_algebra.Axis.Child -> rel_estimate Pg.Child
      | Xqp_algebra.Axis.Descendant | Xqp_algebra.Axis.Descendant_or_self ->
        rel_estimate Pg.Descendant
      | Xqp_algebra.Axis.Attribute -> rel_estimate Pg.Attribute
      | Xqp_algebra.Axis.Following_sibling | Xqp_algebra.Axis.Preceding_sibling ->
        rel_estimate Pg.Following_sibling
      | Xqp_algebra.Axis.Self -> base_card
      | Xqp_algebra.Axis.Parent | Xqp_algebra.Axis.Ancestor
      | Xqp_algebra.Axis.Ancestor_or_self ->
        base_card
      | Xqp_algebra.Axis.Following | Xqp_algebra.Axis.Preceding ->
        Float.min (base_card *. Statistics.avg_fanout stats) (label_total s.Lp.test)
    in
    let selectivity =
      List.fold_left
        (fun acc p ->
          match (p : Lp.predicate) with
          | Lp.Value_pred vp -> acc *. Statistics.predicate_selectivity vp
          | Lp.Exists _ -> acc *. 0.5
          | Lp.Position _ -> acc)
        1.0 s.Lp.predicates
    in
    let card = nav *. selectivity in
    if List.exists (function Lp.Position _ -> true | _ -> false) s.Lp.predicates then
      Float.min card 1.0
    else card

let choose stats pattern =
  let supported = List.filter (supports pattern) all_engines in
  match supported with
  | [] -> Naive_nav
  | first :: rest ->
    fst
      (List.fold_left
         (fun (best, best_cost) engine ->
           let c = estimate stats pattern engine in
           if c < best_cost then (engine, c) else (best, best_cost))
         (first, estimate stats pattern first)
         rest)
