(** Operator cost model — the basis for choosing among physical
    implementations of τ (§2: "a cost model is also needed as a basis of
    choosing the optimal physical query plan").

    Costs are abstract work units (≈ nodes touched); they are meant to
    rank alternatives, not to predict wall-clock time. Experiment E9
    checks the ranking against measurements. *)

type engine =
  | Naive_nav      (** step-at-a-time navigation over the DOM *)
  | Nok_navigation (** NoK fragments over the succinct store + link joins *)
  | Twig_join      (** holistic twig join over tag streams *)
  | Binary_joins   (** binary structural joins, cost of the best order *)

val all_engines : engine list
val engine_name : engine -> string

val supports : Xqp_algebra.Pattern_graph.t -> engine -> bool
(** TwigStack rejects sibling arcs; the others accept any pattern. *)

val estimate : Statistics.t -> Xqp_algebra.Pattern_graph.t -> engine -> float
(** Estimated work units for evaluating the pattern from the document
    root. *)

val choose : Statistics.t -> Xqp_algebra.Pattern_graph.t -> engine
(** Lowest-estimate engine among the supported ones. *)

val estimate_plan :
  Statistics.t -> ?context_card:float -> ?use_summary:bool ->
  Xqp_algebra.Logical_plan.t -> float
(** Estimated output {e cardinality} (not cost) of a plan's top operator.
    While the chain from [Root] stays within downward axes, the path
    summary answers each operator exactly (summed path counts); predicates
    degrade the estimate to an upper bound; unprojectable axes or unknown
    contexts fall back to the legacy tag-pair statistics scaled by
    predicate selectivities ([Context] estimates to [context_card],
    default 1). [~use_summary:false] forces the legacy estimator
    throughout (the PSUM before/after comparison). The "est" column of
    [xqp explain] and the baseline of [xqp calibrate]'s q-error. *)

val estimate_plan_detail :
  Statistics.t -> ?context_card:float -> ?use_summary:bool ->
  Xqp_algebra.Logical_plan.t -> float * Statistics.source
(** {!estimate_plan} plus the estimate's provenance. *)

val plan_certainly_empty : Statistics.t -> Xqp_algebra.Logical_plan.t -> bool
(** The summary proves the plan's result empty (estimate 0 with [Exact]
    provenance) — the planner's licence to compile an [Empty] operator. *)

val estimate_join_order :
  Statistics.t -> Xqp_algebra.Pattern_graph.t -> (int * int) list -> float
(** Estimated cost of a specific binary-join order: Σ per join of (left
    stream + right stream + estimated intermediate tuples), the objective
    of join-order selection [5]. *)

val best_join_order :
  Statistics.t -> Xqp_algebra.Pattern_graph.t -> (int * int) list
(** Connected order minimizing {!estimate_join_order} (exhaustive over
    {!Binary_join.all_orders}; patterns are small). *)
