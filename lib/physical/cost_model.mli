(** Operator cost model — the basis for choosing among physical
    implementations of τ (§2: "a cost model is also needed as a basis of
    choosing the optimal physical query plan").

    Costs are abstract work units (≈ nodes touched); they are meant to
    rank alternatives, not to predict wall-clock time. Experiment E9
    checks the ranking against measurements. *)

type engine =
  | Naive_nav      (** step-at-a-time navigation over the DOM *)
  | Nok_navigation (** NoK fragments over the succinct store + link joins *)
  | Twig_join      (** holistic twig join over tag streams *)
  | Binary_joins   (** binary structural joins, cost of the best order *)

val all_engines : engine list
val engine_name : engine -> string

val supports : Xqp_algebra.Pattern_graph.t -> engine -> bool
(** TwigStack rejects sibling arcs; the others accept any pattern. *)

val estimate : Statistics.t -> Xqp_algebra.Pattern_graph.t -> engine -> float
(** Estimated work units for evaluating the pattern from the document
    root. *)

val choose : Statistics.t -> Xqp_algebra.Pattern_graph.t -> engine
(** Lowest-estimate engine among the supported ones. *)

val estimate_plan :
  Statistics.t -> ?context_card:float -> Xqp_algebra.Logical_plan.t -> float
(** Estimated output {e cardinality} (not cost) of a plan's top operator:
    steps scale the base cardinality by per-arc tag-pair statistics and
    predicate selectivities, τ uses {!Statistics.estimate_result},
    [Context] estimates to [context_card] (default 1). The "est" column
    of [xqp explain] and the baseline of [xqp calibrate]'s q-error. *)

val estimate_join_order :
  Statistics.t -> Xqp_algebra.Pattern_graph.t -> (int * int) list -> float
(** Estimated cost of a specific binary-join order: Σ per join of (left
    stream + right stream + estimated intermediate tuples), the objective
    of join-order selection [5]. *)

val best_join_order :
  Statistics.t -> Xqp_algebra.Pattern_graph.t -> (int * int) list
(** Connected order minimizing {!estimate_join_order} (exhaustive over
    {!Binary_join.all_orders}; patterns are small). *)
