module M = Xqp_obs.Metrics
module Dsan = Xqp_obs.Dsan

type key = {
  query : string;
  optimize : bool;
  strategy : string;
  doc_id : int;
  stats_version : int;
}

(* All caches share the process-wide metrics (the registry is the
   observability surface, not a per-cache one); practically there is one
   shared cache plus short-lived test instances. *)
let m_hits = M.counter M.default "plan_cache.hits"
let m_misses = M.counter M.default "plan_cache.misses"
let m_evictions = M.counter M.default "plan_cache.evictions"
let m_size = M.gauge M.default "plan_cache.size"

type 'a entry = { value : 'a; mutable stamp : int }

(* One independent LRU per shard, each behind its own guard: a hot query
   only contends with queries that hash to the same shard, and recency
   is tracked per shard (eviction picks the LRU entry of the full shard,
   which equals global LRU when there is one shard). *)
type 'a shard = {
  guard : Dsan.guard;
  table : (key, 'a entry) Hashtbl.t;
  shard_capacity : int;
  mutable clock : int;
}

type 'a t = { shards : 'a shard array }

(* Default shard count scales with capacity so small test caches keep
   exact global-LRU semantics (1 shard) while the shared 256-entry cache
   spreads hot fingerprints over 8 locks. *)
let default_shards capacity = max 1 (min 8 (capacity / 32))

let create ?(capacity = 128) ?shards () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be positive";
  let n =
    match shards with
    | None -> default_shards capacity
    | Some n ->
      if n < 1 then invalid_arg "Plan_cache.create: shards must be positive";
      min n capacity
  in
  let shard_capacity = max 1 (capacity / n) in
  {
    shards =
      Array.init n (fun i ->
          {
            guard = Dsan.guard (Printf.sprintf "Plan_cache shard %d" i);
            table = Hashtbl.create (min shard_capacity 64);
            shard_capacity;
            clock = 0;
          });
  }

let shard_count t = Array.length t.shards
let capacity t = Array.fold_left (fun acc s -> acc + s.shard_capacity) 0 t.shards

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

(* Unlocked sum: [Hashtbl.length] is a single field read, so a racing
   insert can make the total stale by one but never tears it. Exact
   counts (tests) should quiesce writers first. *)
let length t = Array.fold_left (fun acc s -> acc + Hashtbl.length s.table) 0 t.shards

let tick s =
  Dsan.assert_held s.guard;
  s.clock <- s.clock + 1;
  s.clock

let find t key =
  let s = shard_of t key in
  let hit =
    Dsan.with_guard s.guard (fun () ->
        match Hashtbl.find_opt s.table key with
        | Some entry ->
          entry.stamp <- tick s;
          Some entry.value
        | None -> None)
  in
  (match hit with Some _ -> M.incr m_hits | None -> M.incr m_misses);
  hit

(* O(shard capacity) victim scan; capacities are small (tens per shard)
   and eviction only happens on insert past capacity, so this never
   shows up next to the parse+rewrite+costing work a hit saves. *)
let evict_lru s =
  Dsan.assert_held s.guard;
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.stamp <= entry.stamp -> acc
        | _ -> Some (key, entry))
      s.table None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove s.table key;
    M.incr m_evictions
  | None -> ()

let add t key value =
  let s = shard_of t key in
  Dsan.with_guard s.guard (fun () ->
      (match Hashtbl.find_opt s.table key with
      | Some _ -> Hashtbl.remove s.table key
      | None -> if Hashtbl.length s.table >= s.shard_capacity then evict_lru s);
      Hashtbl.replace s.table key { value; stamp = tick s });
  M.set m_size (float_of_int (length t))

let clear t =
  Array.iter (fun s -> Dsan.with_guard s.guard (fun () -> Hashtbl.reset s.table)) t.shards;
  M.set m_size 0.0
