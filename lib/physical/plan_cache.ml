module M = Xqp_obs.Metrics

type key = {
  query : string;
  optimize : bool;
  strategy : string;
  doc_id : int;
  stats_version : int;
}

(* All caches share the process-wide metrics (the registry is the
   observability surface, not a per-cache one); practically there is one
   shared cache plus short-lived test instances. *)
let m_hits = M.counter M.default "plan_cache.hits"
let m_misses = M.counter M.default "plan_cache.misses"
let m_evictions = M.counter M.default "plan_cache.evictions"
let m_size = M.gauge M.default "plan_cache.size"

type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  table : (key, 'a entry) Hashtbl.t;
  capacity : int;
  mutable clock : int;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be positive";
  { table = Hashtbl.create (min capacity 64); capacity; clock = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    entry.stamp <- tick t;
    M.incr m_hits;
    Some entry.value
  | None ->
    M.incr m_misses;
    None

(* O(capacity) victim scan; capacities are small (hundreds) and eviction
   only happens on insert past capacity, so this never shows up next to
   the parse+rewrite+costing work a hit saves. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.stamp <= entry.stamp -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    M.incr m_evictions
  | None -> ()

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> if Hashtbl.length t.table >= t.capacity then evict_lru t);
  Hashtbl.replace t.table key { value; stamp = tick t };
  M.set m_size (float_of_int (Hashtbl.length t.table))

let clear t =
  Hashtbl.reset t.table;
  M.set m_size 0.0
