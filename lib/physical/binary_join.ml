module Doc = Xqp_xml.Document
module Pg = Xqp_algebra.Pattern_graph

type doc = Doc.t
type node = Doc.node

(* Semijoin reduction and ordered joins both cover every arc relation. *)
let supported (_ : Pg.t) = true

let candidates ?content_index doc pattern ~context v =
  if v = 0 then Array.of_list (List.sort_uniq compare context)
  else begin
    let vx = Pg.vertex pattern v in
    let is_attribute =
      match Pg.parent pattern v with Some (_, Pg.Attribute) -> true | _ -> false
    in
    (* A covered value predicate lets the content index supply a (usually
       far smaller) starting set instead of the whole tag stream. *)
    let indexed =
      match content_index with
      | Some idx ->
        List.find_map
          (fun pred -> Content_index.candidates idx ~label:vx.Pg.label ~is_attribute pred)
          vx.Pg.predicates
      | None -> None
    in
    let base =
      match indexed with
      | Some nodes -> Array.of_list nodes
      | None -> (
        match vx.Pg.label with
        | Pg.Tag name -> (
          match Xqp_xml.Symtab.find_opt (Doc.symtab doc) name with
          | Some sym -> Doc.nodes_by_name_array doc sym
          | None -> [||])
        | Pg.Wildcard ->
          (* all elements or attributes, depending on the incoming relation *)
          let acc = ref [] in
          for id = Doc.node_count doc - 1 downto 0 do
            match Doc.kind doc id with
            | Doc.Element when not is_attribute -> acc := id :: !acc
            | Doc.Attribute when is_attribute -> acc := id :: !acc
            | Doc.Element | Doc.Attribute | Doc.Text | Doc.Comment | Doc.Pi -> ()
          done;
          Array.of_list !acc)
    in
    (* Kind filter from the incoming relation, plus value predicates. *)
    let keep id = Pg.vertex_matches doc pattern v id in
    Array.of_list (List.filter keep (Array.to_list base))
  end

type semijoin_stats = { scanned : int }

module M = Xqp_obs.Metrics

let m_semijoin_scanned = M.counter M.default "engine.binary.semijoin_scanned"
let m_joins = M.counter M.default "engine.binary.joins"
let m_intermediate = M.counter M.default "engine.binary.intermediate_tuples"

let match_pattern_with_stats ?content_index doc pattern ~context =
  let n = Pg.vertex_count pattern in
  let cand = Array.init n (fun v -> candidates ?content_index doc pattern ~context v) in
  let scanned = ref 0 in
  (* Bottom-up: reduce each parent by each child arc (post-order). *)
  let rec reduce_up v =
    List.iter (fun (c, _) -> reduce_up c) (Pg.children pattern v);
    List.iter
      (fun (c, rel) ->
        scanned := !scanned + Array.length cand.(v) + Array.length cand.(c);
        let survivors = Structural_join.semijoin_ancestors doc rel cand.(v) cand.(c) in
        cand.(v) <- Array.of_list survivors)
      (Pg.children pattern v)
  in
  reduce_up 0;
  (* Top-down: reduce each child to nodes below a surviving parent. *)
  let rec reduce_down v =
    List.iter
      (fun (c, rel) ->
        scanned := !scanned + Array.length cand.(v) + Array.length cand.(c);
        let survivors = Structural_join.semijoin_descendants doc rel cand.(v) cand.(c) in
        cand.(c) <- Array.of_list survivors;
        reduce_down c)
      (Pg.children pattern v)
  in
  reduce_down 0;
  M.add m_semijoin_scanned !scanned;
  (List.map (fun v -> (v, Array.to_list cand.(v))) (Pg.outputs pattern), { scanned = !scanned })

let match_pattern ?content_index doc pattern ~context =
  fst (match_pattern_with_stats ?content_index doc pattern ~context)

(* --- full binary joins in a chosen order ----------------------------- *)

type order_stats = { intermediate_tuples : int; peak_tuples : int; joins : int }

module Int_set = Set.Make (Int)

let evaluate_with_order doc pattern ~context ~order =
  let arcs = Pg.arcs pattern in
  if List.length order <> List.length arcs then
    invalid_arg "Binary_join.evaluate_with_order: order must cover every arc";
  let rel_of (s, t) =
    match List.find_opt (fun (s', t', _) -> s' = s && t' = t) arcs with
    | Some (_, _, rel) -> rel
    | None -> invalid_arg "Binary_join.evaluate_with_order: unknown arc"
  in
  let n = Pg.vertex_count pattern in
  let cand = Array.init n (fun v -> candidates doc pattern ~context v) in
  (* A relation is a list of partial assignments (arrays of length n,
     -1 = unbound). *)
  let bound = ref Int_set.empty in
  let relation = ref [] in
  let intermediate = ref 0 in
  let peak = ref 0 in
  let joins = ref 0 in
  let note_size () =
    let size = List.length !relation in
    intermediate := !intermediate + size;
    if size > !peak then peak := size
  in
  List.iteri
    (fun i (s, t) ->
      let rel = rel_of (s, t) in
      let pairs = Structural_join.join doc rel cand.(s) cand.(t) in
      incr joins;
      if i = 0 then begin
        relation :=
          List.map
            (fun (a, d) ->
              let tuple = Array.make n (-1) in
              tuple.(s) <- a;
              tuple.(t) <- d;
              tuple)
            pairs;
        bound := Int_set.add s (Int_set.add t Int_set.empty)
      end
      else begin
        let s_bound = Int_set.mem s !bound and t_bound = Int_set.mem t !bound in
        if not (s_bound || t_bound) then
          invalid_arg "Binary_join.evaluate_with_order: disconnected join order";
        (* Hash the new pairs on the already-bound side, probe the relation. *)
        let table = Hashtbl.create (List.length pairs) in
        List.iter
          (fun (a, d) ->
            let key = if s_bound then a else d in
            Hashtbl.add table key (a, d))
          pairs;
        relation :=
          List.concat_map
            (fun tuple ->
              let key = if s_bound then tuple.(s) else tuple.(t) in
              List.filter_map
                (fun (a, d) ->
                  (* When both sides are bound this is a selection. *)
                  if s_bound && t_bound then
                    if tuple.(s) = a && tuple.(t) = d then Some tuple else None
                  else begin
                    let fresh = Array.copy tuple in
                    fresh.(s) <- a;
                    fresh.(t) <- d;
                    (* consistency when one side was already bound *)
                    if (s_bound && tuple.(s) <> a) || (t_bound && tuple.(t) <> d) then None
                    else Some fresh
                  end)
                (Hashtbl.find_all table key))
            !relation;
        bound := Int_set.add s (Int_set.add t !bound)
      end;
      note_size ())
    order;
  let outputs =
    List.map
      (fun v ->
        let nodes = List.map (fun tuple -> tuple.(v)) !relation in
        (v, List.sort_uniq compare nodes))
      (Pg.outputs pattern)
  in
  M.add m_joins !joins;
  M.add m_intermediate !intermediate;
  (outputs, { intermediate_tuples = !intermediate; peak_tuples = !peak; joins = !joins })

let default_order pattern =
  let rec walk v acc =
    List.fold_left (fun acc (c, _) -> walk c ((v, c) :: acc)) acc (Pg.children pattern v)
  in
  List.rev (walk 0 [])

let all_orders pattern =
  let arcs = List.map (fun (s, t, _) -> (s, t)) (Pg.arcs pattern) in
  let rec permutations chosen bound remaining acc =
    if remaining = [] then List.rev chosen :: acc
    else
      List.fold_left
        (fun acc arc ->
          let s, t = arc in
          let connected = chosen = [] || Int_set.mem s bound || Int_set.mem t bound in
          if connected then
            permutations (arc :: chosen)
              (Int_set.add s (Int_set.add t bound))
              (List.filter (fun a -> a <> arc) remaining)
              acc
          else acc)
        acc remaining
  in
  permutations [] Int_set.empty arcs []
