(** NoK pattern matching — the paper's navigational physical operator
    (§4.2).

    A NoK fragment (only local relationships) is matched by direct
    navigation over the {!Xqp_storage.Succinct_store}: for each candidate
    fragment root, one bounded walk of the subtree via the
    first-child/next-sibling primitives of the balanced-parentheses
    structure checks all local constraints — no structural joins and no
    materialized intermediate streams for the fragment's internal arcs.

    A general pattern is partitioned ({!Nok_partition}) and the per-
    fragment results are combined with stack-tree structural joins on the
    ancestor-descendant links, "just as in the join-based approach": the
    hybrid evaluation strategy the paper proposes.

    Fragment-internal bindings are projected onto the {e interesting}
    vertices early (outputs and link anchors), so the combination works on
    narrow relations. Node identities are pre-order ranks, which coincide
    with {!Xqp_xml.Document} ids. *)

type stats = {
  nodes_visited : int;     (** navigation steps over the store *)
  fragment_matches : int;  (** fragment embeddings found *)
  join_pairs : int;        (** structural-join output pairs across links *)
}

val supported : Xqp_algebra.Pattern_graph.t -> bool
(** Always true: the partitioner splits any twig into NoK fragments and
    the link joins recombine them. The planner's capability predicate for
    this engine. *)

val match_pattern :
  ?prune:(int -> (Xqp_xml.Document.node -> bool) option) ->
  Xqp_xml.Document.t ->
  Xqp_storage.Succinct_store.t ->
  Xqp_algebra.Pattern_graph.t ->
  context:Xqp_xml.Document.node list ->
  (int * Xqp_xml.Document.node list) list
(** Per-output-vertex match sets (same contract as
    {!Xqp_algebra.Operators.pattern_match}). The store must be built from
    the same document (ranks must agree). [?prune] maps a pattern vertex
    to an optional node filter (path-partition membership from the path
    summary); fragment-root candidate streams drop nodes failing it before
    any subtree navigation. Filters must be sound — rejecting only nodes
    that cannot occur in any embedding. *)

val match_pattern_with_stats :
  ?prune:(int -> (Xqp_xml.Document.node -> bool) option) ->
  Xqp_xml.Document.t ->
  Xqp_storage.Succinct_store.t ->
  Xqp_algebra.Pattern_graph.t ->
  context:Xqp_xml.Document.node list ->
  (int * Xqp_xml.Document.node list) list * stats
