module Lp = Xqp_algebra.Logical_plan
module Tr = Xqp_obs.Trace

type row = {
  path : string;
  depth : int;
  op : string;
  engine : string option;
  est_rows : float;
  actual_rows : int option;
  time_ms : float option;
  io : (string * int) list;
}

let rows_of_plan stats ?(context_card = 1) plan =
  let context_card = float_of_int context_card in
  let rec walk path depth plan acc =
    (* children first: rows come out in execution order *)
    let acc =
      match (plan : Lp.t) with
      | Lp.Root | Lp.Context -> acc
      | Lp.Step (base, _) | Lp.Tpm (base, _) -> walk (path ^ ".0") (depth + 1) base acc
      | Lp.Union (a, b) ->
        walk (path ^ ".1") (depth + 1) b (walk (path ^ ".0") (depth + 1) a acc)
    in
    let engine =
      match (plan : Lp.t) with
      | Lp.Tpm (_, pattern) ->
        Some (Cost_model.engine_name (Cost_model.choose stats pattern))
      | Lp.Root | Lp.Context | Lp.Step _ | Lp.Union _ -> None
    in
    {
      path;
      depth;
      op = Lp.op_label plan;
      engine;
      est_rows = Cost_model.estimate_plan stats ~context_card plan;
      actual_rows = None;
      time_ms = None;
      io = [];
    }
    :: acc
  in
  List.rev (walk "0" 0 plan [])

(* The static half from the IR: engines and estimates are read off the
   compiled plan's annotations, never re-derived through the cost
   model — what the planner bound is what the profile reports. *)
let rows_of_physical physical =
  let module Pp = Physical_plan in
  let rec walk path depth (p : Pp.t) acc =
    (* children first: rows come out in execution order *)
    let acc =
      match p.Pp.op with
      | Pp.Root | Pp.Context | Pp.Empty _ -> acc
      | Pp.Step (base, _) | Pp.Tau (base, _) -> walk (path ^ ".0") (depth + 1) base acc
      | Pp.Union (a, b) ->
        walk (path ^ ".1") (depth + 1) b (walk (path ^ ".0") (depth + 1) a acc)
    in
    let engine =
      match p.Pp.op with
      | Pp.Tau (_, tau) -> Some (Pp.engine_label tau.Pp.engine)
      | Pp.Root | Pp.Context | Pp.Step _ | Pp.Union _ | Pp.Empty _ -> None
    in
    {
      path;
      depth;
      op = Pp.op_label p;
      engine;
      est_rows = p.Pp.est_rows;
      actual_rows = None;
      time_ms = None;
      io = [];
    }
    :: acc
  in
  List.rev (walk "0" 0 physical [])

let is_io_attr name =
  String.length name > 5
  && (String.sub name 0 6 = "pager." || (String.length name > 4 && String.sub name 0 5 = "pool."))

let analyze_physical exec physical ~context =
  let tr = Tr.default in
  let was_enabled = Tr.enabled tr in
  Tr.clear tr;
  Tr.set_enabled tr true;
  let result =
    Fun.protect
      ~finally:(fun () -> Tr.set_enabled tr was_enabled)
      (fun () -> Executor.run_physical exec physical ~context)
  in
  let events = Tr.events tr in
  let by_path = Hashtbl.create 16 in
  List.iter
    (fun e -> match Tr.attr_str e "path" with Some p -> Hashtbl.replace by_path p e | None -> ())
    events;
  let rows =
    List.map
      (fun row ->
        match Hashtbl.find_opt by_path row.path with
        | None -> row
        | Some e ->
          {
            row with
            engine = (match Tr.attr_str e "engine" with Some _ as s -> s | None -> row.engine);
            actual_rows = Tr.attr_int e "out";
            time_ms = Some (Tr.duration_us e /. 1000.0);
            io =
              List.filter_map
                (fun (name, v) ->
                  match v with Tr.Int d when is_io_attr name -> Some (name, d) | _ -> None)
                e.Tr.attrs;
          })
      (rows_of_physical physical)
  in
  (result, rows)

let analyze exec ?strategy plan ~context =
  let physical =
    Executor.compile exec ?strategy ~context_card:(float_of_int (List.length context)) plan
  in
  analyze_physical exec physical ~context

let pp_table ppf rows =
  let opt_str f = function Some v -> f v | None -> "-" in
  let io_str io =
    if io = [] then "-"
    else String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) io)
  in
  let cells =
    List.map
      (fun r ->
        ( String.make (2 * r.depth) ' ' ^ r.op,
          opt_str Fun.id r.engine,
          Printf.sprintf "%.1f" r.est_rows,
          opt_str string_of_int r.actual_rows,
          opt_str (Printf.sprintf "%.3f") r.time_ms,
          io_str r.io ))
      rows
  in
  let header = ("operator", "engine", "est", "actual", "ms", "io") in
  let width f = List.fold_left (fun w row -> max w (String.length (f row))) 0 (header :: cells) in
  let w1 = width (fun (a, _, _, _, _, _) -> a)
  and w2 = width (fun (_, b, _, _, _, _) -> b)
  and w3 = width (fun (_, _, c, _, _, _) -> c)
  and w4 = width (fun (_, _, _, d, _, _) -> d)
  and w5 = width (fun (_, _, _, _, e, _) -> e) in
  let line (a, b, c, d, e, f) =
    Format.fprintf ppf "%-*s  %-*s  %*s  %*s  %*s  %s@." w1 a w2 b w3 c w4 d w5 e f
  in
  line header;
  List.iter line cells
