module J = Xqp_obs.Json

type t =
  | Parse of string
  | Eval of string
  | Timeout of { deadline_ms : int }
  | Overloaded of { queue_depth : int }
  | Shutting_down
  | Bad_request of string
  | Io of string
  | Internal of string

let code = function
  | Parse _ -> "parse"
  | Eval _ -> "eval"
  | Timeout _ -> "timeout"
  | Overloaded _ -> "overloaded"
  | Shutting_down -> "shutting-down"
  | Bad_request _ -> "bad-request"
  | Io _ -> "io"
  | Internal _ -> "internal"

let message = function
  | Parse m -> m
  | Eval m -> m
  | Timeout { deadline_ms } -> Printf.sprintf "query exceeded its %d ms deadline" deadline_ms
  | Overloaded { queue_depth } ->
    Printf.sprintf "server saturated: admission queue full at depth %d" queue_depth
  | Shutting_down -> "server is shutting down"
  | Bad_request m -> m
  | Io m -> m
  | Internal m -> m

let http_status = function
  | Parse _ | Eval _ | Bad_request _ -> 400
  | Timeout _ -> 408
  | Overloaded _ | Shutting_down -> 503
  | Io _ | Internal _ -> 500

let to_json e =
  let extra =
    match e with
    | Timeout { deadline_ms } -> [ ("deadline_ms", J.Num (float_of_int deadline_ms)) ]
    | Overloaded { queue_depth } -> [ ("queue_depth", J.Num (float_of_int queue_depth)) ]
    | _ -> []
  in
  J.Obj ([ ("code", J.Str (code e)); ("message", J.Str (message e)) ] @ extra)

let of_json json =
  let str field = Option.bind (J.member field json) J.to_str in
  let num field = Option.bind (J.member field json) J.to_num in
  match str "code" with
  | None -> Result.Error "error object lacks a \"code\" field"
  | Some c -> (
    let msg = Option.value ~default:"" (str "message") in
    match c with
    | "parse" -> Ok (Parse msg)
    | "eval" -> Ok (Eval msg)
    | "timeout" ->
      let ms = match num "deadline_ms" with Some f -> int_of_float f | None -> 0 in
      Ok (Timeout { deadline_ms = ms })
    | "overloaded" ->
      let d = match num "queue_depth" with Some f -> int_of_float f | None -> 0 in
      Ok (Overloaded { queue_depth = d })
    | "shutting-down" -> Ok Shutting_down
    | "bad-request" -> Ok (Bad_request msg)
    | "io" -> Ok (Io msg)
    | "internal" -> Ok (Internal msg)
    | other -> Result.Error (Printf.sprintf "unknown error code %S" other))

let pp ppf e = Format.fprintf ppf "%s: %s" (code e) (message e)

(* Deprecated façade wrappers promised the old exception surface; map the
   structured error back onto it so callers written against the
   pre-session API keep their handlers. *)
let to_exn = function
  | Parse m -> Xqp_xpath.Parser.Parse_error m
  | Eval m -> Xqp_xquery.Eval.Error m
  | Timeout _ -> Xqp_physical.Executor.Deadline_exceeded
  | other -> Failure (message other)

let raise_exn e = raise (to_exn e)
