(** A server-grade session over one open database.

    This is the redesigned façade core: explicit constructors (no
    extension sniffing), a structured [('a, Error.t) result] surface
    instead of bare exceptions, and one set of optional parameters
    ([?engine ?optimize ?use_cache ?deadline_ms]) shared by every entry
    point — the CLI, the tests and {!Server} all drive this exact code
    path. The legacy [Xqp.*] functions are thin deprecated wrappers over
    it.

    A session is cheap to create and safe to share across domains for
    read-only querying: the underlying executor's artifacts (succinct
    store, statistics, content index) build lazily once, the shared plan
    cache is mutex-sharded, and metrics are atomic (DESIGN.md §11). *)

type t
type node = Xqp_xml.Document.node
type engine = Xqp_physical.Executor.strategy

(** {1 Constructors} *)

val of_document : Xqp_xml.Document.t -> t
val of_tree : Xqp_xml.Tree.t -> t

val of_string : string -> (t, Error.t) result
(** Parse an XML string (whitespace-only text stripped);
    [Error (Parse _)] on malformed input. *)

val open_db : ?domains:int -> string -> (t, Error.t) result
(** Open a packed [.xqdb] store saved by {!save}, or a [.xqdbc] corpus
    catalog written by [xqp pack --corpus]. A corpus session plans once
    against the catalog's merged path summary and scatter-gathers
    execution across shards on [domains] worker domains (default 1 =
    inline; ignored for single stores); result node ids are tagged with
    their document's ordinal, and every entry point below works
    unchanged. [Error (Bad_request _)] if the path ends in neither
    suffix; [Error (Io _)] on missing or corrupt files. *)

val parse_file : string -> (t, Error.t) result
(** Parse an XML file. Refuses [.xqdb]/[.xqdbc] paths (use {!open_db}) —
    the old [of_file] silently switched behavior on the extension. *)

val document : t -> Xqp_xml.Document.t
val executor : t -> Xqp_physical.Executor.t

val close : t -> unit
(** Join a corpus session's worker-domain pool (no-op otherwise).
    Domains are a bounded OS resource — close corpus sessions you are
    done with; queries after [close] must not be issued. *)

val save : t -> string -> unit
(** Persist the succinct store ([.xqdb]). @raise Failure on corpus
    sessions (corpora are packed with [xqp pack]). *)

(** {1 Queries} *)

type query_result = {
  nodes : node list;  (** document order, duplicate-free *)
  engine : string;
      (** labels of the τ engines bound in the executed plan
          (["+"]-joined when mixed), or ["navigation"] *)
  cache : Xqp_physical.Executor.cache_status;
  time_ms : float;    (** wall time of compile+execute for this call *)
}

val run :
  ?engine:engine -> ?optimize:bool -> ?use_cache:bool -> ?deadline_ms:int ->
  t -> string -> (query_result, Error.t) result
(** Run an XPath query from the document root with full result metadata —
    what the JSON response schema is built from. [deadline_ms] bounds
    wall time; past it the result is [Error (Timeout _)]. *)

val query :
  ?engine:engine -> ?optimize:bool -> ?use_cache:bool -> ?deadline_ms:int ->
  t -> string -> (node list, Error.t) result
(** {!run} projected to its node list. *)

type profiled = {
  result : query_result;
  fingerprint : string;
      (** fingerprint of the executed plan's logical erasure — the
          flight-recorder store key *)
  physical : Xqp_physical.Physical_plan.t;
  ops : Xqp_physical.Executor.op_stat list;
      (** per-operator actual-vs-estimated accounting, completion order;
          collected only when a trace is enabled or [profile_ops] is set *)
  worst_q_error : float;
      (** max per-operator q-error when ops were collected, else the
          plan-level (root) q-error when the recorder is on, else [1.0] *)
  pages_read : int;
      (** pager logical reads during this call (global-counter delta:
          approximate under concurrent domains) *)
}

val run_profiled :
  ?engine:engine -> ?optimize:bool -> ?use_cache:bool -> ?deadline_ms:int ->
  ?trace:Xqp_obs.Trace.t -> ?profile_ops:bool -> ?recorder:Xqp_obs.Flight_recorder.t ->
  t -> string -> (profiled, Error.t) result
(** {!run} plus the observability side channels (DESIGN.md §13): when
    [recorder] (default {!Xqp_obs.Flight_recorder.default}) is enabled,
    every outcome that compiled a plan — including timeouts — is folded
    into it as one plan-level sample (fingerprint off the plan cache,
    rows, pages, root q-error) cheap enough for the always-on OBSREC
    gate. Per-operator stats — [ops], wall time and actual-vs-estimated
    per operator — are collected only when an enabled [trace] is passed
    (which wraps the run in a ["query"] span with per-operator children,
    isolated from every other request's tracer) or when [profile_ops]
    (default false) is set, as the server does while slow-query capture
    is armed. With the recorder disabled and neither armed, the executor
    runs the unobserved fast path. {!run} delegates here. *)

type xquery_result = { value : Xqp_algebra.Value.t; time_ms : float }

val run_xquery :
  ?engine:engine -> ?deadline_ms:int -> t -> string ->
  (xquery_result, Error.t) result

val run_xquery_profiled :
  ?engine:engine -> ?deadline_ms:int -> ?trace:Xqp_obs.Trace.t ->
  ?recorder:Xqp_obs.Flight_recorder.t -> t -> string ->
  (xquery_result, Error.t) result
(** {!run_xquery} with recorder/trace plumbing. XQuery plans carry no
    logical fingerprint, so the recorder keys them by source text
    (["xquery:<source>"]); the request trace gets one query-level span. *)

val xquery :
  ?engine:engine -> ?deadline_ms:int -> t -> string ->
  (Xqp_algebra.Value.t, Error.t) result

val xquery_string :
  ?engine:engine -> ?deadline_ms:int -> t -> string -> (string, Error.t) result
(** {!xquery} followed by XML serialization of the result sequence. *)

(** {1 Results} *)

val node_string : ?indent:int -> t -> node -> string
(** One node serialized the way results travel on the wire: elements as
    XML, attributes as [@name="value"], text as its content. *)

val to_xml : ?indent:int -> t -> node list -> string
val text : t -> node -> string

val xquery_result_strings : t -> Xqp_algebra.Value.t -> string list
(** One serialized string per result item (the XQuery analogue of
    {!node_string} over a node list). *)

(** {1 Explain} *)

type explain = {
  rendered : string;  (** the human-readable report *)
  cache : Xqp_physical.Executor.cache_status;
      (** whether {e this} compilation hit the shared plan cache — the
          pre-redesign explain recompiled from scratch and could
          disagree with what [query] actually ran *)
  estimate : float option;       (** estimated result rows (single-pattern plans) *)
  estimate_source : string option;  (** provenance: ["exact"]/["bound"]/["stats"] *)
  chosen : string;               (** cost-model engine choice, or ["navigation"] *)
  physical : Xqp_physical.Physical_plan.t;  (** the plan that [query] executes *)
}

val explain :
  ?engine:engine -> ?optimize:bool -> ?use_cache:bool -> t -> string ->
  (explain, Error.t) result
(** Compile through the same cached path as {!query} and report the plan,
    this call's cache outcome, and the estimate with provenance. *)
