module J = Xqp_obs.Json

type payload = {
  results : string list;
  count : int;
  engine : string;
  cache : string;
  time_ms : float;
}

type t = {
  query : string;
  mode : string;
  request_id : string option;
  queue_ms : float option;
  outcome : (payload, Error.t) result;
}

let ok ?request_id ?queue_ms ~query ~mode ~results ~engine ~cache ~time_ms () =
  {
    query;
    mode;
    request_id;
    queue_ms;
    outcome = Ok { results; count = List.length results; engine; cache; time_ms };
  }

let error ?request_id ?queue_ms ~query ~mode err =
  { query; mode; request_id; queue_ms; outcome = Error err }

let of_query_result ?request_id ?queue_ms session ~query (r : Session.query_result) =
  ok ?request_id ?queue_ms ~query ~mode:"xpath"
    ~results:(List.map (Session.node_string session) r.Session.nodes)
    ~engine:r.Session.engine
    ~cache:(Xqp_physical.Executor.cache_status_label r.Session.cache)
    ~time_ms:r.Session.time_ms ()

let of_xquery_result ?request_id ?queue_ms session ~query (r : Session.xquery_result) =
  ok ?request_id ?queue_ms ~query ~mode:"xquery"
    ~results:(Session.xquery_result_strings session r.Session.value)
    ~engine:"xquery" ~cache:"-" ~time_ms:r.Session.time_ms ()

let http_status t =
  match t.outcome with Ok _ -> 200 | Error e -> Error.http_status e

(* Times round to 3 decimals on the wire (the JSON printer's float
   format), so encode∘decode∘encode is the identity on emitted strings. *)
let round3 ms = Float.round (ms *. 1000.0) /. 1000.0

let to_json t =
  (* [request_id]/[queue_ms] are served-request provenance: emitted only
     when present, so embedded/CLI responses are byte-identical to the
     pre-request-id schema. *)
  let base =
    [ ("query", J.Str t.query); ("mode", J.Str t.mode) ]
    @ (match t.request_id with Some id -> [ ("request_id", J.Str id) ] | None -> [])
    @ match t.queue_ms with Some q -> [ ("queue_ms", J.Num (round3 q)) ] | None -> []
  in
  match t.outcome with
  | Ok p ->
    J.Obj
      (base
      @ [
          ("status", J.Str "ok");
          ("results", J.Arr (List.map (fun s -> J.Str s) p.results));
          ("count", J.Num (float_of_int p.count));
          ("engine", J.Str p.engine);
          ("cache", J.Str p.cache);
          ("time_ms", J.Num (round3 p.time_ms));
        ])
  | Error e -> J.Obj (base @ [ ("status", J.Str "error"); ("error", Error.to_json e) ])

let of_json json =
  let str field = Option.bind (J.member field json) J.to_str in
  let require what = function
    | Some v -> Ok v
    | None -> Result.Error (Printf.sprintf "response lacks %s" what)
  in
  Result.bind (require "\"query\"" (str "query")) (fun query ->
      Result.bind (require "\"mode\"" (str "mode")) (fun mode ->
          let request_id = str "request_id" in
          let queue_ms = Option.bind (J.member "queue_ms" json) J.to_num in
          match str "status" with
          | Some "ok" ->
            let results =
              match Option.bind (J.member "results" json) J.to_arr with
              | Some items -> Ok (List.filter_map J.to_str items)
              | None -> Result.Error "ok response lacks \"results\""
            in
            Result.bind results (fun results ->
                let num field = Option.bind (J.member field json) J.to_num in
                let count =
                  match num "count" with Some f -> int_of_float f | None -> List.length results
                in
                Result.bind (require "\"engine\"" (str "engine")) (fun engine ->
                    Result.bind (require "\"cache\"" (str "cache")) (fun cache ->
                        let time_ms = Option.value ~default:0.0 (num "time_ms") in
                        Ok
                          {
                            query;
                            mode;
                            request_id;
                            queue_ms;
                            outcome = Ok { results; count; engine; cache; time_ms };
                          })))
          | Some "error" -> (
            match J.member "error" json with
            | None -> Result.Error "error response lacks \"error\""
            | Some ej ->
              Result.bind (Error.of_json ej) (fun e ->
                  Ok { query; mode; request_id; queue_ms; outcome = Error e }))
          | Some other -> Result.Error (Printf.sprintf "unknown status %S" other)
          | None -> Result.Error "response lacks \"status\""))

let to_string ?pretty t = J.to_string ?pretty (to_json t)

let of_string s =
  match J.parse s with
  | json -> of_json json
  | exception J.Parse_error m -> Result.Error m
