module Xml = Xqp_xml
module Storage = Xqp_storage
module Algebra = Xqp_algebra
module Xpath = Xqp_xpath
module Physical = Xqp_physical
module Xquery = Xqp_xquery
module Workload = Xqp_workload

(* The session API: the real implementation surface. *)
module Error = Error
module Session = Session
module Response = Response
module Server = Server

type t = Session.t
type node = Xml.Document.node

let of_document = Session.of_document
let of_tree = Session.of_tree

let get = function Ok v -> v | Result.Error e -> Error.raise_exn e

let of_string s = get (Session.of_string s)

(* Deprecated: dispatches on the extension. Use Session.open_db /
   Session.parse_file, which say what they expect. *)
let of_file path =
  if Filename.check_suffix path ".xqdb" then get (Session.open_db path)
  else get (Session.parse_file path)

let document = Session.document
let executor = Session.executor
let save = Session.save
let query ?engine t q = get (Session.query ?engine t q)

let root_context = [ Algebra.Operators.document_context ]

let lazy_plan (_ : t) q =
  let plan = Algebra.Rewrite.simplify (Xpath.Parser.parse q) in
  if Physical.Pipelined.supported plan then Some plan else None

let query_first t q =
  match lazy_plan t q with
  | Some plan -> Physical.Pipelined.first (document t) plan ~context:root_context
  | None -> ( match query t q with [] -> None | first :: _ -> Some first)

let query_exists t q =
  match lazy_plan t q with
  | Some plan -> Physical.Pipelined.exists (document t) plan ~context:root_context
  | None -> query t q <> []

let xquery t q = get (Session.xquery t q)
let xquery_string t q = get (Session.xquery_string t q)
let to_xml = Session.to_xml
let text = Session.text
let explain t q = (get (Session.explain t q)).Session.rendered
