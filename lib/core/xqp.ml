module Xml = Xqp_xml
module Storage = Xqp_storage
module Algebra = Xqp_algebra
module Xpath = Xqp_xpath
module Physical = Xqp_physical
module Xquery = Xqp_xquery
module Workload = Xqp_workload

type t = { exec : Physical.Executor.t }
type node = Xml.Document.node

let of_document doc = { exec = Physical.Executor.create doc }
let of_tree tree = of_document (Xml.Document.of_tree tree)
let of_string s = of_document (Xml.Document.of_string ~strip:true s)

let of_file path =
  if Filename.check_suffix path ".xqdb" then
    of_tree (Storage.Succinct_store.to_tree (Storage.Store_io.load path))
  else of_tree (Xml.Xml_parser.parse_file ~strip:true path)

let document t = Physical.Executor.doc t.exec
let executor t = t.exec
let save t path = Storage.Store_io.save (Physical.Executor.store t.exec) path

let query ?(engine = Physical.Executor.Auto) t q =
  Physical.Executor.query t.exec ~strategy:engine q

let root_context = [ Algebra.Operators.document_context ]

let lazy_plan (_ : t) q =
  let plan = Algebra.Rewrite.simplify (Xpath.Parser.parse q) in
  if Physical.Pipelined.supported plan then Some plan else None

let query_first t q =
  match lazy_plan t q with
  | Some plan -> Physical.Pipelined.first (document t) plan ~context:root_context
  | None -> ( match query t q with [] -> None | first :: _ -> Some first)

let query_exists t q =
  match lazy_plan t q with
  | Some plan -> Physical.Pipelined.exists (document t) plan ~context:root_context
  | None -> query t q <> []

let xquery t q = Xquery.Eval.eval_query t.exec q
let xquery_string t q = Xquery.Eval.result_string t.exec (xquery t q)

let to_xml ?indent t nodes =
  let doc = document t in
  String.concat ""
    (List.map
       (fun id ->
         match Xml.Document.kind doc id with
         | Xml.Document.Attribute ->
           Printf.sprintf "@%s=\"%s\"" (Xml.Document.name doc id) (Xml.Document.content doc id)
         | Xml.Document.Text -> Xml.Document.content doc id
         | _ -> Xml.Serializer.to_string ?indent (Xml.Document.to_tree doc id))
       nodes)

let text t id = Xml.Document.typed_value (document t) id

let explain t q =
  let buffer = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buffer in
  let plan = Xpath.Parser.parse q in
  Format.fprintf ppf "parsed:    %a@." Algebra.Logical_plan.pp (Algebra.Rewrite.simplify plan);
  let optimized = Algebra.Rewrite.optimize plan in
  Format.fprintf ppf "optimized: %a@." Algebra.Logical_plan.pp optimized;
  (match optimized with
  | Algebra.Logical_plan.Tpm (_, pattern) ->
    Format.fprintf ppf "pattern:   %a@." Algebra.Pattern_graph.pp pattern;
    Format.fprintf ppf "partition: %a@." Physical.Nok_partition.pp
      (Physical.Nok_partition.partition pattern);
    let stats = Physical.Executor.statistics t.exec in
    Format.fprintf ppf "estimate:  %.1f rows@."
      (Physical.Statistics.estimate_result stats pattern);
    List.iter
      (fun engine ->
        if Physical.Cost_model.supports pattern engine then
          Format.fprintf ppf "cost[%s] = %.0f@."
            (Physical.Cost_model.engine_name engine)
            (Physical.Cost_model.estimate stats pattern engine))
      Physical.Cost_model.all_engines;
    Format.fprintf ppf "chosen:    %s@."
      (Physical.Cost_model.engine_name (Physical.Cost_model.choose stats pattern))
  | _ -> Format.fprintf ppf "(steps run navigationally)@.");
  Format.fprintf ppf "physical:@.%a@." Physical.Physical_plan.pp
    (Physical.Executor.compile t.exec optimized);
  Format.pp_print_flush ppf ();
  Buffer.contents buffer
