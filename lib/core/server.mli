(** [xqp serve] — a multicore query server over one shared session.

    One acceptor domain admits connections onto a bounded, mutex-guarded
    work queue; [config.domains] worker domains pop jobs and answer them
    against a single read-only {!Session.t} (safe to share: the plan
    cache is sharded, lazy artifacts build under locks, metrics are
    atomic — DESIGN.md §11/§12). Admission control rejects instantly
    with 503 when the queue is full, so saturation degrades into fast
    failures rather than unbounded latency.

    Connections are persistent (HTTP/1.1 keep-alive): a worker serves
    requests back to back on one connection until the client sends
    [Connection: close] (the HTTP/1.0 default), the socket idles past
    the receive timeout, or the server starts draining — then the
    response carries [Connection: close] and the socket shuts.

    Endpoints:
    - [GET /query?q=…&mode=xpath|xquery&engine=…&deadline_ms=…&no_cache=1]
      (or POST with the same fields as a JSON body) → a {!Response}
      body carrying [request_id] and [queue_ms]; the id is also echoed
      as the [X-Request-Id] header. The deadline clock starts at
      {e enqueue}: time spent waiting in the queue counts against it.
    - [GET /health] → canary query probe (200/500).
    - [GET /metrics] → Prometheus text exposition of
      {!Xqp_obs.Metrics.default}, including the [serve.*] family
      (accepted/rejected/requests/errors/timeouts/slow_captures
      counters, queue_depth gauge, latency_ms and queue_wait_ms
      histograms, per-domain requests and busy_us).
    - [GET /debug/queries?k=20&by=total_ms|count|max_ms|q_error] →
      top-K flight-recorder fingerprints as JSON
      ({!Xqp_obs.Flight_recorder.top}), plus the store's drop count.
    - [GET /debug/slow] → captured slow queries (full plan, per-operator
      actual-vs-estimated rows, span count), most recent first.
    - [GET /debug/requests/<id>] → that request's span tree as Chrome
      trace JSON, while it remains in the bounded request log (256
      entries; evicted traces 404).

    Every served query runs under its own request-scoped tracer
    (DESIGN.md §13) — concurrent domains never share an open-span
    stack — and is folded into {!Xqp_obs.Flight_recorder.default}.

    No toplevel mutable state: everything lives in the handle returned
    by {!start}, so [xqp lint --domains] stays clean. *)

type config = {
  host : string;      (** bind address (default loopback) *)
  port : int;         (** 0 picks an ephemeral port; read it back with {!port} *)
  domains : int;      (** worker domains (≥ 1) *)
  queue_depth : int;  (** admission bound; beyond it requests get 503 *)
  default_deadline_ms : int option;
      (** applied when a request names no [deadline_ms]; [None] = unbounded *)
  canary : string;    (** the [/health] probe query *)
  slow_ms : float option;
      (** capture queries at or over this latency into the slow ring;
          [None] disables capture *)
  log_path : string option;
      (** structured JSONL query log (rotation-safe append); [None] = off *)
}

val default_config : config
(** loopback, ephemeral port, 2 domains, queue 64, no default deadline,
    canary [/*], no slow capture, no query log. *)

type t
(** A running server (acceptor + workers). *)

val start : ?config:config -> Session.t -> t
(** Bind, validate the canary (building the session's lazy artifacts
    before workers race for them), spawn the domain pool.
    @raise Invalid_argument on a bad config or failing canary;
    @raise Unix.Unix_error if the port cannot be bound. *)

val port : t -> int
(** The bound port (the ephemeral one when [config.port = 0]). *)

val config : t -> config

val stop : t -> unit
(** Graceful shutdown: stop accepting, then drain — every request
    already admitted is answered before the workers exit. Blocks until
    all domains are joined. *)
