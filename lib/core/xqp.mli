(** xqp — the single entry point.

    The real surface is the session API: {!Session} (explicit
    constructors, [result]-typed queries, unified
    [?engine ?optimize ?use_cache ?deadline_ms] options), {!Error} (the
    structured failure type), {!Response} (the one JSON wire schema) and
    {!Server} ([xqp serve]'s multicore HTTP front end). The bare
    functions below are the original façade kept as thin wrappers over
    {!Session} — new code should use the session API directly:

    {[
      let db = Result.get_ok (Xqp.Session.of_string "<bib><book/></bib>") in
      match Xqp.Session.run db "//book" with
      | Ok r -> print_string (Xqp.Session.to_xml db r.nodes)
      | Error e -> prerr_endline (Xqp.Error.message e)
    ]} *)

(** {1 Re-exported layers} *)

module Xml = Xqp_xml
module Storage = Xqp_storage
module Algebra = Xqp_algebra
module Xpath = Xqp_xpath
module Physical = Xqp_physical
module Xquery = Xqp_xquery
module Workload = Xqp_workload

(** {1 The session API} *)

module Error = Error
module Session = Session
module Response = Response
module Server = Server

(** {1 Legacy façade}

    Exception-raising wrappers over {!Session}, kept so existing callers
    (and the seed tests) compile unchanged. Each re-raises the
    corresponding {!Error.t} via {!Error.to_exn}. *)

type t = Session.t
(** An open database: a packed document plus its lazily-built succinct
    store, statistics, content index and engine cache. *)

type node = Xqp_xml.Document.node

val of_string : string -> t
(** Parse an XML string (whitespace-only text stripped).
    @deprecated Use {!Session.of_string} (returns a [result]). *)

val of_file : string -> t
(** Load an [.xml] file, or an [.xqdb] store saved by {!save} — the
    extension decides.
    @deprecated Use {!Session.parse_file} or {!Session.open_db}, which
    state their intent instead of sniffing the extension. *)

val of_tree : Xqp_xml.Tree.t -> t
val of_document : Xqp_xml.Document.t -> t
val document : t -> Xqp_xml.Document.t
val executor : t -> Xqp_physical.Executor.t

val save : t -> string -> unit
(** Persist the succinct store ([.xqdb], see {!Storage.Store_io}). *)

(** {2 Queries} *)

val query : ?engine:Xqp_physical.Executor.strategy -> t -> string -> node list
(** Run an XPath expression from the document root: parse, rewrite
    (R0 + R1/R2 fusion into τ), dispatch to the cost-model-chosen engine
    (or [?engine]). Results in document order, duplicate-free.
    @raise Xqp_xpath.Parser.Parse_error on malformed input.
    @deprecated Use {!Session.query} / {!Session.run}. *)

val query_first : t -> string -> node option
(** Lazy evaluation with early exit when the plan is in the downward
    fragment ({!Physical.Pipelined}); falls back to {!query} otherwise. *)

val query_exists : t -> string -> bool

val xquery : t -> string -> Xqp_algebra.Value.t
(** Evaluate an XQuery expression ({!Xquery.Eval}).
    @raise Xqp_xquery.Xq_parser.Parse_error / {!Xqp_xquery.Eval.Error}.
    @deprecated Use {!Session.xquery}. *)

val xquery_string : t -> string -> string

(** {2 Results} *)

val to_xml : ?indent:int -> t -> node list -> string
(** Serialize result nodes (attributes as [@name="value"] lines). *)

val text : t -> node -> string
(** Typed (text) value of one node. *)

val explain : t -> string -> string
(** The rendered report of {!Session.explain}: parsed and optimized
    plans, pattern graph, NoK partition, cost estimates with provenance,
    the chosen engine, this call's plan-cache outcome, and the physical
    plan that {!query} actually runs. *)
