(** The one query-response wire schema.

    [xqp query --json] and every [xqp serve] response body emit this
    exact shape, so a client written against the CLI's output parses
    server responses unchanged:

    {v
    {"query": "...", "mode": "xpath" | "xquery",
     "status": "ok",
     "results": ["<item .../>", ...], "count": N,
     "engine": "tau-nok", "cache": "hit" | "miss" | "bypassed",
     "time_ms": 1.234}
    v}

    or, on failure,

    {v
    {"query": "...", "mode": "...", "status": "error",
     "error": {"code": "timeout", "message": "...", "deadline_ms": 50}}
    v}

    Responses served by [xqp serve] additionally carry request
    provenance after ["mode"] — ["request_id"] (also echoed as the
    [X-Request-Id] header) and ["queue_ms"] (admission-queue wait).
    Both are omitted, not null, for CLI/embedded responses.

    {!of_json} inverts {!to_json} (covered by a round-trip test), so the
    schema cannot drift between the two producers. *)

type payload = {
  results : string list;  (** serialized items, one string each *)
  count : int;
  engine : string;        (** τ engines bound in the plan, or ["navigation"] *)
  cache : string;         (** plan-cache outcome label for this call *)
  time_ms : float;
}

type t = {
  query : string;
  mode : string;  (** ["xpath"] or ["xquery"] *)
  request_id : string option;
      (** the served request's id (echoed in [X-Request-Id]); [None] —
          and absent on the wire — for embedded/CLI responses *)
  queue_ms : float option;
      (** admission-queue wait before a worker picked the request up *)
  outcome : (payload, Error.t) result;
}

val ok :
  ?request_id:string -> ?queue_ms:float -> query:string -> mode:string ->
  results:string list -> engine:string -> cache:string -> time_ms:float ->
  unit -> t

val error :
  ?request_id:string -> ?queue_ms:float -> query:string -> mode:string ->
  Error.t -> t

val of_query_result :
  ?request_id:string -> ?queue_ms:float -> Session.t -> query:string ->
  Session.query_result -> t
(** Serialize an XPath result through {!Session.node_string}. *)

val of_xquery_result :
  ?request_id:string -> ?queue_ms:float -> Session.t -> query:string ->
  Session.xquery_result -> t

val http_status : t -> int
(** 200 for ok; {!Error.http_status} otherwise. *)

val to_json : t -> Xqp_obs.Json.t
val of_json : Xqp_obs.Json.t -> (t, string) result

val to_string : ?pretty:bool -> t -> string
val of_string : string -> (t, string) result
