(** The one query-response wire schema.

    [xqp query --json] and every [xqp serve] response body emit this
    exact shape, so a client written against the CLI's output parses
    server responses unchanged:

    {v
    {"query": "...", "mode": "xpath" | "xquery",
     "status": "ok",
     "results": ["<item .../>", ...], "count": N,
     "engine": "tau-nok", "cache": "hit" | "miss" | "bypassed",
     "time_ms": 1.234}
    v}

    or, on failure,

    {v
    {"query": "...", "mode": "...", "status": "error",
     "error": {"code": "timeout", "message": "...", "deadline_ms": 50}}
    v}

    {!of_json} inverts {!to_json} (covered by a round-trip test), so the
    schema cannot drift between the two producers. *)

type payload = {
  results : string list;  (** serialized items, one string each *)
  count : int;
  engine : string;        (** τ engines bound in the plan, or ["navigation"] *)
  cache : string;         (** plan-cache outcome label for this call *)
  time_ms : float;
}

type t = {
  query : string;
  mode : string;  (** ["xpath"] or ["xquery"] *)
  outcome : (payload, Error.t) result;
}

val ok :
  query:string -> mode:string -> results:string list -> engine:string ->
  cache:string -> time_ms:float -> t

val error : query:string -> mode:string -> Error.t -> t

val of_query_result : Session.t -> query:string -> Session.query_result -> t
(** Serialize an XPath result through {!Session.node_string}. *)

val of_xquery_result : Session.t -> query:string -> Session.xquery_result -> t

val http_status : t -> int
(** 200 for ok; {!Error.http_status} otherwise. *)

val to_json : t -> Xqp_obs.Json.t
val of_json : Xqp_obs.Json.t -> (t, string) result

val to_string : ?pretty:bool -> t -> string
val of_string : string -> (t, string) result
