module Executor = Xqp_physical.Executor
module Metrics = Xqp_obs.Metrics
module Export = Xqp_obs.Export
module Trace = Xqp_obs.Trace
module Fr = Xqp_obs.Flight_recorder
module Dsan = Xqp_obs.Dsan
module J = Xqp_obs.Json

type config = {
  host : string;
  port : int;
  domains : int;
  queue_depth : int;
  default_deadline_ms : int option;
  canary : string;
  slow_ms : float option;
  log_path : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = 2;
    queue_depth = 64;
    default_deadline_ms = None;
    canary = "/*";
    slow_ms = None;
    log_path = None;
  }

type job = { fd : Unix.file_descr; enqueued : float }

(* Recent request traces for /debug/requests/<id>: a bounded ring of
   (request id, completed span list), overwriting oldest-first. Requests
   past the window 404 — the endpoint serves a debugging window, not an
   archive. *)
type req_log = {
  rl_guard : Dsan.guard;
  rl_slots : (string * Trace.event list) option array;
  mutable rl_head : int;
}

(* Shared across the acceptor and worker domains. All mutable pieces
   live inside this record (created per [start]; no toplevel state) and
   are either mutex-guarded or atomics. *)
type core = {
  session : Session.t;
  config : config;
  listen_fd : Unix.file_descr;
  queue : job Queue.t;  (* guarded by [lock] *)
  lock : Mutex.t;
  nonempty : Condition.t;
  accepting : bool Atomic.t;
  draining : bool Atomic.t;
  next_request : int Atomic.t;
  req_log : req_log;
  m_accepted : Metrics.counter;
  m_rejected : Metrics.counter;
  m_requests : Metrics.counter;
  m_errors : Metrics.counter;
  m_timeouts : Metrics.counter;
  m_slow : Metrics.counter;
  m_queue_depth : Metrics.gauge;
  m_latency : Metrics.histogram;
  m_queue_wait : Metrics.histogram;
}

type t = { core : core; port : int; acceptor : unit Domain.t; workers : unit Domain.t array }

let port t = t.port
let config t = t.core.config

(* --- HTTP plumbing ------------------------------------------------------- *)

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 408 -> "Request Timeout"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let written = Unix.write fd b off (n - off) in
      if written > 0 then go (off + written)
  in
  try go 0 with Unix.Unix_error _ -> ()

let respond ?(extra_headers = []) ?(keep_alive = false) fd ~status ~content_type body =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) extra_headers)
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: %s\r\n\r\n%s"
       status (reason_phrase status) content_type (String.length body) extra
       (if keep_alive then "keep-alive" else "close")
       body)

let find_blank_line s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then Some i
    else go (i + 1)
  in
  go 0

type request = { meth : string; path : string; params : (string * string) list; body : string }

let url_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '+' ->
        Buffer.add_char b ' ';
        go (i + 1)
      | '%' when i + 2 < n -> (
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some c ->
          Buffer.add_char b (Char.chr c);
          go (i + 3)
        | None ->
          Buffer.add_char b '%';
          go (i + 1))
      | c ->
        Buffer.add_char b c;
        go (i + 1)
  in
  go 0;
  Buffer.contents b

let parse_params qs =
  List.filter_map
    (fun pair ->
      if pair = "" then None
      else
        match String.index_opt pair '=' with
        | Some i ->
          Some
            ( url_decode (String.sub pair 0 i),
              url_decode (String.sub pair (i + 1) (String.length pair - i - 1)) )
        | None -> Some (url_decode pair, ""))
    (String.split_on_char '&' qs)

let header_value headers name =
  let lower = String.lowercase_ascii in
  List.find_map
    (fun line ->
      match String.index_opt line ':' with
      | Some i when lower (String.sub line 0 i) = name ->
        Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | _ -> None)
    headers

(* Does the client want the connection kept open after this request?
   HTTP/1.1 defaults to yes unless [Connection: close]; HTTP/1.0 (and
   anything unrecognized) defaults to no unless [Connection: keep-alive].
   The Connection header may be a comma-separated option list. *)
let wants_keep_alive ~version headers =
  let contains hay needle =
    let hn = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match Option.map String.lowercase_ascii (header_value headers "connection") with
  | Some v when contains v "close" -> false
  | Some v when contains v "keep-alive" -> true
  | _ -> version = "HTTP/1.1"

(* Read one request: headers to the blank line, then Content-Length
   bytes of body. Returns [None] on EOF/garbage/idle timeout (connection
   just closes). SO_RCVTIMEO on the socket bounds how long a stalled or
   idle keep-alive client can hold a worker. *)
let recv_request fd =
  let chunk_len = 4096 in
  let chunk = Bytes.create chunk_len in
  let buf = Buffer.create 1024 in
  let rec fill_headers () =
    match find_blank_line (Buffer.contents buf) with
    | Some i -> Some i
    | None ->
      if Buffer.length buf > 65536 then None
      else
        let n = try Unix.read fd chunk 0 chunk_len with Unix.Unix_error _ -> 0 in
        if n = 0 then None
        else (
          Buffer.add_subbytes buf chunk 0 n;
          fill_headers ())
  in
  match fill_headers () with
  | None -> None
  | Some blank -> (
    let head = String.sub (Buffer.contents buf) 0 blank in
    let lines =
      String.split_on_char '\n' head
      |> List.map (fun l ->
             if String.length l > 0 && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l)
    in
    match lines with
    | [] -> None
    | request_line :: headers -> (
      match String.split_on_char ' ' request_line with
      | meth :: target :: rest ->
        let content_length =
          match header_value headers "content-length" with
          | Some v -> (
            match int_of_string_opt v with Some n when n >= 0 && n <= 1_048_576 -> n | _ -> 0)
          | None -> 0
        in
        let already = Buffer.length buf - (blank + 4) in
        let body = Buffer.create (max content_length 16) in
        Buffer.add_string body (String.sub (Buffer.contents buf) (blank + 4) already);
        let rec fill_body () =
          if Buffer.length body < content_length then
            let n =
              try Unix.read fd chunk 0 (min chunk_len (content_length - Buffer.length body))
              with Unix.Unix_error _ -> 0
            in
            if n > 0 then (
              Buffer.add_subbytes body chunk 0 n;
              fill_body ())
        in
        fill_body ();
        let path, params =
          match String.index_opt target '?' with
          | Some i ->
            ( String.sub target 0 i,
              parse_params (String.sub target (i + 1) (String.length target - i - 1)) )
          | None -> (target, [])
        in
        let version = match rest with v :: _ -> String.trim v | [] -> "" in
        Some
          ( { meth; path; params; body = Buffer.contents body },
            wants_keep_alive ~version headers )
      | _ -> None))

(* --- request handling ---------------------------------------------------- *)

(* Query parameters reach us either as url-encoded GET parameters or as
   a JSON POST body with the same field names. *)
let request_fields req =
  if req.meth = "POST" && String.length (String.trim req.body) > 0 then
    match J.parse req.body with
    | json ->
      let str f = Option.bind (J.member f json) J.to_str in
      let num f = Option.bind (J.member f json) J.to_num in
      Ok
        ( str "q",
          str "mode",
          str "engine",
          Option.map int_of_float (num "deadline_ms"),
          (match J.member "no_cache" json with Some (J.Bool b) -> b | _ -> false) )
    | exception J.Parse_error m -> Error (Error.Bad_request (Printf.sprintf "body: %s" m))
  else
    let str f = List.assoc_opt f req.params in
    Ok
      ( str "q",
        str "mode",
        str "engine",
        Option.bind (str "deadline_ms") int_of_string_opt,
        match str "no_cache" with Some ("1" | "true") -> true | _ -> false )

(* Rotation-safe structured query log: one JSON object per line, opened
   O_APPEND per entry and closed again, so a logrotate move-and-recreate
   never loses lines and short appends never interleave. *)
let log_entry core ~request_id ~query ~mode ~status ~latency_ms ~queue_ms =
  match core.config.log_path with
  | None -> ()
  | Some path -> (
    let round3 x = Float.round (x *. 1000.0) /. 1000.0 in
    let line =
      J.to_string
        (J.Obj
           [
             ("ts", J.Num (Unix.gettimeofday ()));
             ("request_id", J.Str request_id);
             ("query", J.Str query);
             ("mode", J.Str mode);
             ("status", J.Num (float_of_int status));
             ("latency_ms", J.Num (round3 latency_ms));
             ("queue_ms", J.Num (round3 queue_ms));
           ])
      ^ "\n"
    in
    match Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 with
    | fd ->
      (try ignore (Unix.write_substring fd line 0 (String.length line))
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ())

(* Slow-query capture: full plan rendering + per-operator actual-vs-
   estimated rows + the request's span tree, pushed onto the flight
   recorder's bounded ring when the query ran past [--slow-ms]. *)
let maybe_capture core ~request_id ~events (p : Session.profiled) q =
  match core.config.slow_ms with
  | Some threshold when p.Session.result.Session.time_ms >= threshold ->
    Metrics.incr core.m_slow;
    let r = p.Session.result in
    let ops =
      List.map
        (fun (o : Executor.op_stat) ->
          {
            Fr.op_path = o.Executor.os_path;
            op_label = o.Executor.os_op;
            op_engine = o.Executor.os_engine;
            op_est_rows = o.Executor.os_est;
            op_actual_rows = o.Executor.os_actual;
            op_ms = o.Executor.os_ms;
          })
        (List.sort
           (fun (a : Executor.op_stat) (b : Executor.op_stat) ->
             compare a.Executor.os_path b.Executor.os_path)
           p.Session.ops)
    in
    Fr.capture Fr.default
      {
        Fr.cap_request_id = request_id;
        cap_sample =
          {
            Fr.fingerprint = p.Session.fingerprint;
            query = q;
            mode = "xpath";
            latency_ms = r.Session.time_ms;
            rows = List.length r.Session.nodes;
            pages_read = p.Session.pages_read;
            cache_hit = r.Session.cache = Executor.Cache_hit;
            deadline_missed = false;
            failed = false;
            worst_q_error = p.Session.worst_q_error;
          };
        cap_plan = Format.asprintf "%a" Xqp_physical.Physical_plan.pp p.Session.physical;
        cap_ops = ops;
        cap_events = events;
        cap_wall = Unix.gettimeofday ();
      }
  | _ -> ()

let maybe_capture_xquery core ~request_id ~events (r : Session.xquery_result) q =
  match core.config.slow_ms with
  | Some threshold when r.Session.time_ms >= threshold ->
    Metrics.incr core.m_slow;
    Fr.capture Fr.default
      {
        Fr.cap_request_id = request_id;
        cap_sample =
          {
            Fr.fingerprint = "xquery:" ^ q;
            query = q;
            mode = "xquery";
            latency_ms = r.Session.time_ms;
            rows = List.length r.Session.value;
            pages_read = 0;
            cache_hit = false;
            deadline_missed = false;
            failed = false;
            worst_q_error = 1.0;
          };
        cap_plan = "(xquery)";
        cap_ops = [];
        cap_events = events;
        cap_wall = Unix.gettimeofday ();
      }
  | _ -> ()

let push_req_log core ~request_id events =
  let rl = core.req_log in
  Dsan.with_guard rl.rl_guard (fun () ->
      rl.rl_slots.(rl.rl_head) <- Some (request_id, events);
      rl.rl_head <- (rl.rl_head + 1) mod Array.length rl.rl_slots)

let find_req_log core request_id =
  let rl = core.req_log in
  Dsan.with_guard rl.rl_guard (fun () ->
      Array.fold_left
        (fun acc slot ->
          match slot with
          | Some (id, events) when id = request_id -> Some events
          | _ -> acc)
        None rl.rl_slots)

let run_query core job req ~request_id ~queue_ms =
  (* Every served query gets its own tracer: request-scoped span trees
     stay isolated across worker domains (no shared open-span stack),
     and the completed tree lands in the request log for
     /debug/requests/<id>. *)
  let tr = Trace.create ~capacity:4096 () in
  Trace.set_enabled tr true;
  let t_start = Unix.gettimeofday () in
  let finish ~query ~mode response =
    let status = Response.http_status response in
    push_req_log core ~request_id (Trace.events tr);
    log_entry core ~request_id ~query ~mode ~status
      ~latency_ms:((Unix.gettimeofday () -. t_start) *. 1000.0)
      ~queue_ms;
    (status, Response.to_string response)
  in
  match request_fields req with
  | Error e ->
    finish ~query:"" ~mode:"xpath"
      (Response.error ~request_id ~queue_ms ~query:"" ~mode:"xpath" e)
  | Ok (q, mode, engine_name, deadline_ms, no_cache) -> (
    let mode = Option.value ~default:"xpath" mode in
    match q with
    | None ->
      finish ~query:"" ~mode
        (Response.error ~request_id ~queue_ms ~query:"" ~mode
           (Error.Bad_request "missing parameter \"q\""))
    | Some q -> (
      let fail e =
        finish ~query:q ~mode (Response.error ~request_id ~queue_ms ~query:q ~mode e)
      in
      match
        match engine_name with
        | None -> Ok Executor.Auto
        | Some name -> (
          match Executor.strategy_of_string name with
          | Ok s -> Ok s
          | Error m -> Error (Error.Bad_request m))
      with
      | Error e -> fail e
      | Ok engine -> (
        (* The deadline covers queue wait too: a query that waited past
           its budget times out without executing. *)
        let requested =
          match deadline_ms with Some ms -> Some ms | None -> core.config.default_deadline_ms
        in
        let remaining_ms =
          Option.map
            (fun ms ->
              let elapsed = (Unix.gettimeofday () -. job.enqueued) *. 1000.0 in
              int_of_float (Float.max 0.0 (float_of_int ms -. elapsed)))
            requested
        in
        match remaining_ms with
        | Some 0 ->
          Metrics.incr core.m_timeouts;
          fail (Error.Timeout { deadline_ms = Option.value ~default:0 requested })
        | _ -> (
          (* Stash the profiled result so slow capture can run after the
             request span has closed (the capture then carries the whole
             balanced tree). *)
          let profiled = ref None in
          let xq_result = ref None in
          let outcome =
            Trace.with_span tr
              ~attrs:
                [ ("request_id", Trace.Str request_id); ("queue_ms", Trace.Float queue_ms) ]
              "request"
              (fun _ ->
                match mode with
                | "xpath" ->
                  Result.map
                    (fun (p : Session.profiled) ->
                      profiled := Some p;
                      Response.of_query_result ~request_id ~queue_ms core.session ~query:q
                        p.Session.result)
                    (Session.run_profiled ~engine ~use_cache:(not no_cache)
                       ?deadline_ms:remaining_ms ~trace:tr
                       ~profile_ops:(core.config.slow_ms <> None)
                       core.session q)
                | "xquery" ->
                  Result.map
                    (fun (r : Session.xquery_result) ->
                      xq_result := Some r;
                      Response.of_xquery_result ~request_id ~queue_ms core.session ~query:q r)
                    (Session.run_xquery_profiled ~engine ?deadline_ms:remaining_ms ~trace:tr
                       core.session q)
                | other ->
                  Error
                    (Error.Bad_request (Printf.sprintf "unknown mode %S (xpath|xquery)" other)))
          in
          let events = Trace.events tr in
          (match !profiled with Some p -> maybe_capture core ~request_id ~events p q | None -> ());
          (match !xq_result with
          | Some r -> maybe_capture_xquery core ~request_id ~events r q
          | None -> ());
          match outcome with
          | Ok response -> finish ~query:q ~mode response
          | Error (Error.Timeout _) ->
            Metrics.incr core.m_timeouts;
            (* report the deadline the caller asked for, not the queue-
               discounted remainder *)
            fail (Error.Timeout { deadline_ms = Option.value ~default:0 requested })
          | Error e ->
            Metrics.incr core.m_errors;
            fail e))))

(* --- debug endpoints ------------------------------------------------------ *)

let run_debug_queries params =
  let k =
    match Option.bind (List.assoc_opt "k" params) int_of_string_opt with
    | Some k when k > 0 -> k
    | _ -> 20
  in
  match
    match List.assoc_opt "by" params with
    | None -> Some `Total_ms
    | Some s -> Fr.by_of_string s
  with
  | None -> (400, J.to_string (J.Obj [ ("error", J.Str "by must be total_ms|count|max_ms|q_error") ]))
  | Some by ->
    let stats = Fr.top ~k ~by Fr.default in
    ( 200,
      J.to_string
        (J.Obj
           [
             ("queries", J.Arr (List.map Fr.stat_to_json stats));
             ("dropped", J.Num (float_of_int (Fr.dropped Fr.default)));
           ]) )

let run_debug_slow () =
  (200, J.to_string (J.Obj [ ("slow", J.Arr (List.map Fr.capture_to_json (Fr.slow Fr.default))) ]))

let run_debug_request core request_id =
  match find_req_log core request_id with
  | Some events -> (200, Export.to_chrome_json ~process_name:("xqp request " ^ request_id) events)
  | None ->
    ( 404,
      J.to_string
        (J.Obj [ ("error", J.Str (Printf.sprintf "no trace for request %s (evicted or unknown)" request_id)) ]) )

let run_health core =
  match Session.query ~deadline_ms:1000 core.session core.config.canary with
  | Ok nodes ->
    (200, J.to_string (J.Obj [ ("status", J.Str "ok"); ("canary", J.Num (float_of_int (List.length nodes))) ]))
  | Error e -> (500, J.to_string (J.Obj [ ("status", J.Str "error"); ("error", Error.to_json e) ]))

let debug_request_prefix = "/debug/requests/"

let handle_request core job req ~queue_ms =
  let status, content_type, extra_headers, body =
      match req.path with
      | "/query" ->
        let request_id = Printf.sprintf "r-%d" (Atomic.fetch_and_add core.next_request 1 + 1) in
        let status, body = run_query core job req ~request_id ~queue_ms in
        (status, "application/json", [ ("X-Request-Id", request_id) ], body)
      | "/health" ->
        let status, body = run_health core in
        (status, "application/json", [], body)
      | "/metrics" -> (200, "text/plain; version=0.0.4", [], Export.to_prometheus Metrics.default)
      | "/debug/queries" ->
        let status, body = run_debug_queries req.params in
        (status, "application/json", [], body)
      | "/debug/slow" ->
        let status, body = run_debug_slow () in
        (status, "application/json", [], body)
      | path when String.starts_with ~prefix:debug_request_prefix path ->
        let id =
          String.sub path (String.length debug_request_prefix)
            (String.length path - String.length debug_request_prefix)
        in
        let status, body = run_debug_request core id in
        (status, "application/json", [], body)
      | other ->
        ( 404,
          "application/json",
          [],
          Response.to_string
            (Response.error ~query:"" ~mode:"xpath"
               (Error.Bad_request (Printf.sprintf "no such endpoint %s" other))) )
  in
  (status, content_type, extra_headers, body)

(* Per-connection request loop: serve requests back to back while the
   client asks for keep-alive (HTTP/1.1 default). SO_RCVTIMEO is the
   idle timeout — a connection with no next request within it reads as
   EOF and closes. Draining downgrades every response to
   [Connection: close] so stop never waits on idle clients. *)
let handle core job ~queue_ms ~m_domain_requests ~m_domain_busy =
  let rec loop ~queue_ms =
    match recv_request job.fd with
    | None -> ()
    | Some (req, client_keep_alive) ->
      let t0 = Unix.gettimeofday () in
      Metrics.incr core.m_requests;
      Metrics.incr m_domain_requests;
      let status, content_type, extra_headers, body = handle_request core job req ~queue_ms in
      let keep_alive = client_keep_alive && not (Atomic.get core.draining) in
      respond job.fd ~status ~content_type ~extra_headers ~keep_alive body;
      let t1 = Unix.gettimeofday () in
      Metrics.add m_domain_busy (int_of_float ((t1 -. t0) *. 1e6));
      Metrics.observe core.m_latency (((t1 -. t0) *. 1000.0) +. queue_ms);
      (* only the first request on a connection waited in the accept queue *)
      if keep_alive then loop ~queue_ms:0.0
  in
  loop ~queue_ms

(* --- domains ------------------------------------------------------------- *)

let worker core index () =
  let m_requests =
    Metrics.counter Metrics.default (Printf.sprintf "serve.domain.%d.requests" index)
  in
  let m_busy = Metrics.counter Metrics.default (Printf.sprintf "serve.domain.%d.busy_us" index) in
  let rec next () =
    Mutex.lock core.lock;
    let rec await () =
      if not (Queue.is_empty core.queue) then (
        let job = Queue.pop core.queue in
        Metrics.set core.m_queue_depth (float_of_int (Queue.length core.queue));
        Some job)
      else if Atomic.get core.draining then None
      else (
        Condition.wait core.nonempty core.lock;
        await ())
    in
    let job = await () in
    Mutex.unlock core.lock;
    match job with
    | None -> ()
    | Some job ->
      let queue_ms = (Unix.gettimeofday () -. job.enqueued) *. 1000.0 in
      Metrics.observe core.m_queue_wait queue_ms;
      (try handle core job ~queue_ms ~m_domain_requests:m_requests ~m_domain_busy:m_busy
       with _ -> Metrics.incr core.m_errors);
      (try Unix.close job.fd with Unix.Unix_error _ -> ());
      next ()
  in
  next ()

(* Admission rejection writes its 503 from the acceptor, after a single
   best-effort read of whatever request bytes arrived (closing with
   unread data would RST the connection under the response). *)
let reject fd error =
  let scratch = Bytes.create 4096 in
  (try ignore (Unix.read fd scratch 0 4096) with Unix.Unix_error _ -> ());
  let body = Response.to_string (Response.error ~query:"" ~mode:"xpath" error) in
  respond fd ~status:(Error.http_status error) ~content_type:"application/json" body;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let acceptor_loop core () =
  while Atomic.get core.accepting do
    match Unix.select [ core.listen_fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept core.listen_fd with
      | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) -> ()
      | fd, _ ->
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
         with Unix.Unix_error _ -> ());
        Metrics.incr core.m_accepted;
        let enqueued = Unix.gettimeofday () in
        Mutex.lock core.lock;
        if Atomic.get core.draining then (
          Mutex.unlock core.lock;
          Metrics.incr core.m_rejected;
          reject fd Error.Shutting_down)
        else if Queue.length core.queue >= core.config.queue_depth then (
          Mutex.unlock core.lock;
          Metrics.incr core.m_rejected;
          reject fd (Error.Overloaded { queue_depth = core.config.queue_depth }))
        else (
          Queue.push { fd; enqueued } core.queue;
          Metrics.set core.m_queue_depth (float_of_int (Queue.length core.queue));
          Condition.signal core.nonempty;
          Mutex.unlock core.lock))
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done;
  try Unix.close core.listen_fd with Unix.Unix_error _ -> ()

(* --- lifecycle ----------------------------------------------------------- *)

let start ?(config = default_config) session =
  if config.domains < 1 then invalid_arg "Server.start: domains must be >= 1";
  if config.queue_depth < 1 then invalid_arg "Server.start: queue_depth must be >= 1";
  (* a client hanging up mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port))
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 128;
  let port =
    match Unix.getsockname listen_fd with Unix.ADDR_INET (_, p) -> p | _ -> config.port
  in
  let m = Metrics.default in
  let core =
    {
      session;
      config;
      listen_fd;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      accepting = Atomic.make true;
      draining = Atomic.make false;
      next_request = Atomic.make 0;
      req_log =
        {
          rl_guard = Dsan.guard "Server request log";
          rl_slots = Array.make 256 None;
          rl_head = 0;
        };
      m_accepted = Metrics.counter m "serve.accepted";
      m_rejected = Metrics.counter m "serve.rejected";
      m_requests = Metrics.counter m "serve.requests";
      m_errors = Metrics.counter m "serve.errors";
      m_timeouts = Metrics.counter m "serve.timeouts";
      m_slow = Metrics.counter m "serve.slow_captures";
      m_queue_depth = Metrics.gauge m "serve.queue_depth";
      m_latency = Metrics.histogram m "serve.latency_ms";
      m_queue_wait = Metrics.histogram m "serve.queue_wait_ms";
    }
  in
  (* Build the lazy executor artifacts (store, statistics, index) once on
     this domain before workers race for them, and validate the canary. *)
  (match Session.query ~deadline_ms:30_000 session config.canary with
  | Ok _ -> ()
  | Error e ->
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    invalid_arg (Printf.sprintf "Server.start: canary %S failed: %s" config.canary (Error.message e)));
  let workers = Array.init config.domains (fun i -> Domain.spawn (worker core i)) in
  let acceptor = Domain.spawn (acceptor_loop core) in
  { core; port; acceptor; workers }

let stop t =
  (* Stop admitting first; the acceptor exits its select loop and closes
     the listen socket. Then flip draining and wake every worker: each
     finishes the jobs still queued, then exits — in-flight queries are
     never cut off. *)
  Atomic.set t.core.accepting false;
  Domain.join t.acceptor;
  Atomic.set t.core.draining true;
  Mutex.lock t.core.lock;
  Condition.broadcast t.core.nonempty;
  Mutex.unlock t.core.lock;
  Array.iter Domain.join t.workers
