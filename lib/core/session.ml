module Xml = Xqp_xml
module Storage = Xqp_storage
module Algebra = Xqp_algebra
module Physical = Xqp_physical
module Executor = Physical.Executor
module Ops = Algebra.Operators
module Pp = Physical.Physical_plan

type t = { exec : Executor.t }
type node = Xml.Document.node
type engine = Executor.strategy

(* --- constructors ------------------------------------------------------- *)

let of_document doc = { exec = Executor.create doc }
let of_tree tree = of_document (Xml.Document.of_tree tree)

let catching_source f =
  match f () with
  | session -> Ok session
  | exception Xml.Sax.Parse_error { line; column; message } ->
    Error (Error.Parse (Printf.sprintf "%d:%d: %s" line column message))
  | exception Sys_error m -> Error (Error.Io m)
  | exception Failure m -> Error (Error.Io m)

let of_string s = catching_source (fun () -> of_document (Xml.Document.of_string ~strip:true s))

let open_db path =
  if not (Filename.check_suffix path ".xqdb") then
    Error (Error.Bad_request (Printf.sprintf "%s: open_db expects a packed .xqdb store" path))
  else
    catching_source (fun () ->
        of_tree (Storage.Succinct_store.to_tree (Storage.Store_io.load path)))

let parse_file path =
  if Filename.check_suffix path ".xqdb" then
    Error (Error.Bad_request (Printf.sprintf "%s: parse_file expects XML; use open_db" path))
  else catching_source (fun () -> of_tree (Xml.Xml_parser.parse_file ~strip:true path))

let document t = Executor.doc t.exec
let executor t = t.exec
let save t path = Storage.Store_io.save (Executor.store t.exec) path

(* --- queries ------------------------------------------------------------- *)

type query_result = {
  nodes : node list;
  engine : string;
  cache : Executor.cache_status;
  time_ms : float;
}

(* Engines actually bound into the compiled plan, in execution order —
   the truthful "engine" field of a response (contrast the requested
   strategy, which may be [Auto]). *)
let plan_engines physical =
  let rec collect (p : Pp.t) acc =
    match p.Pp.op with
    | Pp.Root | Pp.Context | Pp.Empty _ -> acc
    | Pp.Step (base, _) -> collect base acc
    | Pp.Tau (base, tau) -> Pp.engine_label tau.Pp.engine :: collect base acc
    | Pp.Union (a, b) -> collect a (collect b acc)
  in
  match List.sort_uniq compare (collect physical []) with
  | [] -> "navigation"
  | labels -> String.concat "+" labels

let deadline_of_ms = function
  | None -> None
  | Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.0))

let catching_query ?deadline_ms f =
  match f () with
  | v -> Ok v
  | exception Xqp_xpath.Parser.Parse_error m -> Error (Error.Parse m)
  | exception Xqp_xpath.Lexer.Lex_error { position; message } ->
    Error (Error.Parse (Printf.sprintf "at %d: %s" position message))
  | exception Xqp_xquery.Xq_parser.Parse_error { position; message } ->
    Error (Error.Parse (Printf.sprintf "at %d: %s" position message))
  | exception Xqp_xquery.Eval.Error m -> Error (Error.Eval m)
  | exception Executor.Deadline_exceeded ->
    Error (Error.Timeout { deadline_ms = Option.value ~default:0 deadline_ms })
  | exception Failure m -> Error (Error.Internal m)

let run ?(engine = Executor.Auto) ?(optimize = true) ?(use_cache = true) ?deadline_ms t q =
  catching_query ?deadline_ms (fun () ->
      let deadline = deadline_of_ms deadline_ms in
      let t0 = Unix.gettimeofday () in
      let physical, cache =
        Executor.compile_query_info t.exec ~strategy:engine ~optimize ~use_cache q
      in
      let nodes =
        Executor.run_physical t.exec ?deadline physical ~context:[ Ops.document_context ]
      in
      {
        nodes;
        engine = plan_engines physical;
        cache;
        time_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
      })

let query ?engine ?optimize ?use_cache ?deadline_ms t q =
  Result.map (fun r -> r.nodes) (run ?engine ?optimize ?use_cache ?deadline_ms t q)

type xquery_result = { value : Algebra.Value.t; time_ms : float }

let run_xquery ?engine ?deadline_ms t q =
  catching_query ?deadline_ms (fun () ->
      let deadline = deadline_of_ms deadline_ms in
      let t0 = Unix.gettimeofday () in
      let value = Xqp_xquery.Eval.eval_query t.exec ?strategy:engine ?deadline q in
      { value; time_ms = (Unix.gettimeofday () -. t0) *. 1000.0 })

let xquery ?engine ?deadline_ms t q =
  Result.map (fun r -> r.value) (run_xquery ?engine ?deadline_ms t q)

let xquery_string ?engine ?deadline_ms t q =
  Result.map (fun v -> Xqp_xquery.Eval.result_string t.exec v) (xquery ?engine ?deadline_ms t q)

(* --- results ------------------------------------------------------------- *)

let node_string ?indent t id =
  let doc = document t in
  match Xml.Document.kind doc id with
  | Xml.Document.Attribute ->
    Printf.sprintf "@%s=\"%s\"" (Xml.Document.name doc id) (Xml.Document.content doc id)
  | Xml.Document.Text -> Xml.Document.content doc id
  | _ -> Xml.Serializer.to_string ?indent (Xml.Document.to_tree doc id)

let to_xml ?indent t nodes = String.concat "" (List.map (node_string ?indent t) nodes)
let text t id = Xml.Document.typed_value (document t) id

let xquery_result_strings t value =
  List.map
    (fun tree -> Xml.Serializer.to_string tree)
    (Xqp_xquery.Eval.result_trees t.exec value)

(* --- explain ------------------------------------------------------------- *)

type explain = {
  rendered : string;
  cache : Executor.cache_status;
  estimate : float option;
  estimate_source : string option;
  chosen : string;
  physical : Pp.t;
}

(* Unlike the pre-redesign [Xqp.explain], this goes through
   [compile_query_info] — the identical path [query] takes — so the plan
   printed is the plan that runs, the cache outcome is this call's own,
   and the estimate carries its provenance. *)
let explain ?(engine = Executor.Auto) ?(optimize = true) ?(use_cache = true) t q =
  catching_query (fun () ->
      let buffer = Buffer.create 512 in
      let ppf = Format.formatter_of_buffer buffer in
      let module Lp = Algebra.Logical_plan in
      let module Pg = Algebra.Pattern_graph in
      let plan = Xqp_xpath.Parser.parse q in
      Format.fprintf ppf "parsed:    %a@." Lp.pp (Algebra.Rewrite.simplify plan);
      let optimized =
        if optimize then Algebra.Rewrite.optimize plan else Algebra.Rewrite.simplify plan
      in
      Format.fprintf ppf "optimized: %a@." Lp.pp optimized;
      let stats = Executor.statistics t.exec in
      let estimate, estimate_source, chosen =
        match optimized with
        | Lp.Tpm (_, pattern) ->
          Format.fprintf ppf "pattern:   %a@." Pg.pp pattern;
          Format.fprintf ppf "partition: %a@." Physical.Nok_partition.pp
            (Physical.Nok_partition.partition pattern);
          let est, src = Physical.Cost_model.estimate_plan_detail stats optimized in
          let src_label = Physical.Statistics.source_label src in
          Format.fprintf ppf "estimate:  %.1f rows (%s)@." est src_label;
          List.iter
            (fun eng ->
              if Physical.Cost_model.supports pattern eng then
                Format.fprintf ppf "cost[%s] = %.0f@."
                  (Physical.Cost_model.engine_name eng)
                  (Physical.Cost_model.estimate stats pattern eng))
            Physical.Cost_model.all_engines;
          let chosen =
            Physical.Cost_model.engine_name (Physical.Cost_model.choose stats pattern)
          in
          Format.fprintf ppf "chosen:    %s@." chosen;
          (Some est, Some src_label, chosen)
        | _ ->
          Format.fprintf ppf "(steps run navigationally)@.";
          (None, None, "navigation")
      in
      let physical, cache =
        Executor.compile_query_info t.exec ~strategy:engine ~optimize ~use_cache q
      in
      Format.fprintf ppf "plan cache: %s@." (Executor.cache_status_label cache);
      Format.fprintf ppf "physical:@.%a@." Pp.pp physical;
      Format.pp_print_flush ppf ();
      { rendered = Buffer.contents buffer; cache; estimate; estimate_source; chosen; physical })
