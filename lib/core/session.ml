module Xml = Xqp_xml
module Storage = Xqp_storage
module Algebra = Xqp_algebra
module Physical = Xqp_physical
module Executor = Physical.Executor
module Ops = Algebra.Operators
module Pp = Physical.Physical_plan

module Sg = Physical.Scatter_gather

(* A session backs onto either one executor or a whole corpus. In corpus
   mode [exec] is the scatter-gather planning executor (merged-summary
   statistics, merged stats version): every compile path — query, explain,
   the plan cache — goes through it unchanged, and only execution fans
   out. Single-document callers see no difference anywhere. *)
type t = { exec : Executor.t; corpus : Sg.t option }

type node = Xml.Document.node
type engine = Executor.strategy

(* --- constructors ------------------------------------------------------- *)

let of_document doc = { exec = Executor.create doc; corpus = None }
let of_tree tree = of_document (Xml.Document.of_tree tree)

let catching_source f =
  match f () with
  | session -> Ok session
  | exception Xml.Sax.Parse_error { line; column; message } ->
    Error (Error.Parse (Printf.sprintf "%d:%d: %s" line column message))
  | exception Sys_error m -> Error (Error.Io m)
  | exception Failure m -> Error (Error.Io m)

let of_string s = catching_source (fun () -> of_document (Xml.Document.of_string ~strip:true s))

let open_db ?domains path =
  if Storage.Catalog.is_catalog_path path then
    catching_source (fun () ->
        let sg = Sg.open_catalog ?domains (Storage.Catalog.load path) in
        { exec = Sg.planner sg; corpus = Some sg })
  else if not (Filename.check_suffix path ".xqdb") then
    Error
      (Error.Bad_request
         (Printf.sprintf "%s: open_db expects a packed .xqdb store or .xqdbc catalog" path))
  else
    catching_source (fun () ->
        of_tree (Storage.Succinct_store.to_tree (Storage.Store_io.load path)))

let parse_file path =
  if Filename.check_suffix path ".xqdb" || Storage.Catalog.is_catalog_path path then
    Error (Error.Bad_request (Printf.sprintf "%s: parse_file expects XML; use open_db" path))
  else catching_source (fun () -> of_tree (Xml.Xml_parser.parse_file ~strip:true path))

let document t = Executor.doc t.exec
let executor t = t.exec
let close t = Option.iter Sg.close t.corpus

let save t path =
  match t.corpus with
  | Some _ -> failwith "Session.save: corpus sessions are packed with `xqp pack`"
  | None -> Storage.Store_io.save (Executor.store t.exec) path

(* --- queries ------------------------------------------------------------- *)

type query_result = {
  nodes : node list;
  engine : string;
  cache : Executor.cache_status;
  time_ms : float;
}

(* Engines actually bound into the compiled plan, in execution order —
   the truthful "engine" field of a response (contrast the requested
   strategy, which may be [Auto]). *)
let plan_engines physical =
  let rec collect (p : Pp.t) acc =
    match p.Pp.op with
    | Pp.Root | Pp.Context | Pp.Empty _ -> acc
    | Pp.Step (base, _) -> collect base acc
    | Pp.Tau (base, tau) -> Pp.engine_label tau.Pp.engine :: collect base acc
    | Pp.Union (a, b) -> collect a (collect b acc)
  in
  match List.sort_uniq compare (collect physical []) with
  | [] -> "navigation"
  | labels -> String.concat "+" labels

let deadline_of_ms = function
  | None -> None
  | Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.0))

let catching_query ?deadline_ms f =
  match f () with
  | v -> Ok v
  | exception Xqp_xpath.Parser.Parse_error m -> Error (Error.Parse m)
  | exception Xqp_xpath.Lexer.Lex_error { position; message } ->
    Error (Error.Parse (Printf.sprintf "at %d: %s" position message))
  | exception Xqp_xquery.Xq_parser.Parse_error { position; message } ->
    Error (Error.Parse (Printf.sprintf "at %d: %s" position message))
  | exception Xqp_xquery.Eval.Error m -> Error (Error.Eval m)
  | exception Executor.Deadline_exceeded ->
    Error (Error.Timeout { deadline_ms = Option.value ~default:0 deadline_ms })
  | exception Failure m -> Error (Error.Internal m)

(* --- profiled queries: the flight-recorder feed -------------------------- *)

module Tr = Xqp_obs.Trace
module Fr = Xqp_obs.Flight_recorder
module M = Xqp_obs.Metrics

type profiled = {
  result : query_result;
  fingerprint : string;
  physical : Pp.t;
  ops : Executor.op_stat list;
  worst_q_error : float;
  pages_read : int;
}

(* The same handle the pager bumps; per-query page accounting is the
   delta around the run — exact single-domain, approximate when other
   domains read pages concurrently (DESIGN.md §13). *)
let m_pager_reads = M.counter M.default "pager.logical_reads"

let worst_q ops =
  List.fold_left (fun acc (o : Executor.op_stat) -> Float.max acc o.Executor.os_q) 1.0 ops

let is_timeout = function Error.Timeout _ -> true | _ -> false

(* [run] with the observability side channels: a sample folded into the
   flight recorder on every outcome that produced a plan, and the
   compiled plan + accounting exposed to the caller for slow-query
   capture.

   Collection is two-level. The always-on recorder takes a plan-level
   sample — fingerprint off the plan cache, rows, pages, one root-level
   q-error — whose cost is a few hundred nanoseconds and fits the OBSREC
   ≤2% gate. Per-operator [op_stat] rows (wall time, actual-vs-estimated
   per operator) cost two clock reads and a histogram point per
   operator, so they are collected only when a request trace is enabled
   or the caller arms [profile_ops] — the server does so exactly when
   slow-query capture ([--slow-ms]) is on. When the recorder is disabled
   and neither is armed, the executor runs the unobserved fast path —
   the recorder-off baseline the OBSREC gate compares against. *)
let run_profiled ?(engine = Executor.Auto) ?(optimize = true) ?(use_cache = true) ?deadline_ms
    ?trace ?(profile_ops = false) ?(recorder = Fr.default) t q =
  let recording = Fr.enabled recorder in
  let tracing = match trace with Some tr -> Tr.enabled tr | None -> false in
  let profiling = tracing || profile_ops in
  let collect = recording || profiling in
  let stats = if profiling then Some (ref []) else None in
  let compiled = ref None in
  let pages0 = if collect then M.value m_pager_reads else 0 in
  let t0 = Unix.gettimeofday () in
  let outcome =
    catching_query ?deadline_ms (fun () ->
        let deadline = deadline_of_ms deadline_ms in
        let physical, fingerprint, cache =
          Executor.compile_query_fp t.exec ~strategy:engine ~optimize ~use_cache q
        in
        compiled := Some (physical, cache, fingerprint);
        let execute () =
          match t.corpus with
          | None ->
            Executor.run_physical t.exec ?deadline ?trace ?stats physical
              ~context:[ Ops.document_context ]
          | Some sg ->
            (* One compiled plan, fanned across shards; per-operator rows
               come back merged across documents. *)
            let r = Sg.run sg ?deadline ?trace ~collect_ops:profiling physical in
            (match stats with Some s -> s := List.rev r.Sg.ops | None -> ());
            r.Sg.nodes
        in
        match trace with
        | Some tr when Tr.enabled tr ->
          Tr.with_span tr
            ~attrs:[ ("query", Tr.Str q); ("mode", Tr.Str "xpath") ]
            "query"
            (fun _ -> execute ())
        | _ -> execute ())
  in
  let time_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let pages_read = if collect then max 0 (M.value m_pager_reads - pages0) else 0 in
  let ops = match stats with Some r -> List.rev !r | None -> [] in
  let sample ~rows ~cache ~failed ~deadline_missed ~worst_q_error fingerprint =
    {
      Fr.fingerprint;
      query = q;
      mode = "xpath";
      latency_ms = time_ms;
      rows;
      pages_read;
      cache_hit = cache = Executor.Cache_hit;
      deadline_missed;
      failed;
      worst_q_error;
    }
  in
  match outcome with
  | Ok nodes ->
    let physical, cache, fingerprint = Option.get !compiled in
    let rows = List.length nodes in
    (* Per-op rows already fed the q-error histogram inside the
       executor; the plan-level path feeds it exactly once here. *)
    let worst_q_error =
      if profiling then worst_q ops
      else if recording then Executor.plan_q_error physical ~actual:rows
      else 1.0
    in
    if recording then
      Fr.record recorder
        (sample ~rows ~cache ~failed:false ~deadline_missed:false ~worst_q_error fingerprint);
    Ok
      {
        result = { nodes; engine = plan_engines physical; cache; time_ms };
        fingerprint;
        physical;
        ops;
        worst_q_error;
        pages_read;
      }
  | Error e ->
    (match !compiled with
    | Some (_, cache, fingerprint) when recording ->
      Fr.record recorder
        (sample ~rows:0 ~cache ~failed:true ~deadline_missed:(is_timeout e)
           ~worst_q_error:(worst_q ops) fingerprint)
    | _ -> ());
    Error e

let run ?engine ?optimize ?use_cache ?deadline_ms t q =
  Result.map
    (fun p -> p.result)
    (run_profiled ?engine ?optimize ?use_cache ?deadline_ms t q)

let query ?engine ?optimize ?use_cache ?deadline_ms t q =
  Result.map (fun r -> r.nodes) (run ?engine ?optimize ?use_cache ?deadline_ms t q)

type xquery_result = { value : Algebra.Value.t; time_ms : float }

(* XQuery plans have no logical fingerprint; the recorder keys them by
   source text. The request trace gets a single query-level span — the
   evaluator's internal executor calls still trace into [Trace.default]
   only when that tracer is explicitly enabled. *)
let run_xquery_profiled ?engine ?deadline_ms ?trace ?(recorder = Fr.default) t q =
  let recording = Fr.enabled recorder in
  let pages0 = if recording then M.value m_pager_reads else 0 in
  let t0 = Unix.gettimeofday () in
  let outcome =
    catching_query ?deadline_ms (fun () ->
        let deadline = deadline_of_ms deadline_ms in
        let eval () =
          match t.corpus with
          | None -> Xqp_xquery.Eval.eval_query t.exec ?strategy:engine ?deadline q
          | Some sg ->
            (* Corpus XQuery semantics: evaluate per document (in global
               order) and concatenate the result sequences — the
               collection()-style map. Aggregates therefore yield one item
               per document, not one corpus-wide total. *)
            let n = Sg.doc_count sg in
            let rec go ordinal acc =
              if ordinal >= n then List.concat (List.rev acc)
              else
                let value =
                  Sg.with_doc_executor sg ~ordinal (fun exec ->
                      Xqp_xquery.Eval.eval_query exec ?strategy:engine ?deadline q)
                in
                let tagged =
                  List.map
                    (function
                      | Algebra.Value.Node id -> Algebra.Value.Node (Sg.encode ~ordinal id)
                      | item -> item)
                    value
                in
                go (ordinal + 1) (tagged :: acc)
            in
            go 0 []
        in
        match trace with
        | Some tr when Tr.enabled tr ->
          Tr.with_span tr
            ~attrs:[ ("query", Tr.Str q); ("mode", Tr.Str "xquery") ]
            "query"
            (fun _ -> eval ())
        | _ -> eval ())
  in
  let time_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let record ~rows ~failed ~deadline_missed =
    if recording then
      Fr.record recorder
        {
          Fr.fingerprint = "xquery:" ^ q;
          query = q;
          mode = "xquery";
          latency_ms = time_ms;
          rows;
          pages_read = max 0 (M.value m_pager_reads - pages0);
          cache_hit = false;
          deadline_missed;
          failed;
          worst_q_error = 1.0;
        }
  in
  match outcome with
  | Ok value ->
    record ~rows:(List.length value) ~failed:false ~deadline_missed:false;
    Ok { value; time_ms }
  | Error e ->
    record ~rows:0 ~failed:true ~deadline_missed:(is_timeout e);
    Error e

let run_xquery ?engine ?deadline_ms t q = run_xquery_profiled ?engine ?deadline_ms t q

let xquery ?engine ?deadline_ms t q =
  Result.map (fun r -> r.value) (run_xquery ?engine ?deadline_ms t q)

(* --- results ------------------------------------------------------------- *)

(* Resolve a (possibly ordinal-tagged) result node to its owning document
   and within-document id. Single-document sessions pass through. *)
let owning_doc t id =
  match t.corpus with
  | None -> (document t, id)
  | Some sg ->
    let ordinal, node = Sg.decode id in
    if ordinal < 0 then (document t, id) else (Sg.document sg ~ordinal, node)

let node_string ?indent t id =
  let doc, id = owning_doc t id in
  match Xml.Document.kind doc id with
  | Xml.Document.Attribute ->
    Printf.sprintf "@%s=\"%s\"" (Xml.Document.name doc id) (Xml.Document.content doc id)
  | Xml.Document.Text -> Xml.Document.content doc id
  | _ -> Xml.Serializer.to_string ?indent (Xml.Document.to_tree doc id)

let to_xml ?indent t nodes = String.concat "" (List.map (node_string ?indent t) nodes)

let text t id =
  let doc, id = owning_doc t id in
  Xml.Document.typed_value doc id

let xquery_result_strings t value =
  match t.corpus with
  | None ->
    List.map
      (fun tree -> Xml.Serializer.to_string tree)
      (Xqp_xquery.Eval.result_trees t.exec value)
  | Some sg ->
    (* Route every node item through its owning document; atoms and
       fragments carry their own data (the planner executor's placeholder
       document is never consulted for them). *)
    List.map
      (fun item ->
        let exec_for, item =
          match item with
          | Algebra.Value.Node id ->
            let ordinal, node = Sg.decode id in
            if ordinal < 0 then ((fun f -> f t.exec), item)
            else ((fun f -> Sg.with_doc_executor sg ~ordinal f), Algebra.Value.Node node)
          | _ -> ((fun f -> f t.exec), item)
        in
        exec_for (fun exec ->
            String.concat ""
              (List.map Xml.Serializer.to_string (Xqp_xquery.Eval.result_trees exec [ item ]))))
      value

let xquery_string ?engine ?deadline_ms t q =
  Result.map
    (fun v ->
      match t.corpus with
      | None -> Xqp_xquery.Eval.result_string t.exec v
      | Some _ -> String.concat "" (xquery_result_strings t v))
    (xquery ?engine ?deadline_ms t q)

(* --- explain ------------------------------------------------------------- *)

type explain = {
  rendered : string;
  cache : Executor.cache_status;
  estimate : float option;
  estimate_source : string option;
  chosen : string;
  physical : Pp.t;
}

(* Unlike the pre-redesign [Xqp.explain], this goes through
   [compile_query_info] — the identical path [query] takes — so the plan
   printed is the plan that runs, the cache outcome is this call's own,
   and the estimate carries its provenance. *)
let explain ?(engine = Executor.Auto) ?(optimize = true) ?(use_cache = true) t q =
  catching_query (fun () ->
      let buffer = Buffer.create 512 in
      let ppf = Format.formatter_of_buffer buffer in
      let module Lp = Algebra.Logical_plan in
      let module Pg = Algebra.Pattern_graph in
      let plan = Xqp_xpath.Parser.parse q in
      Format.fprintf ppf "parsed:    %a@." Lp.pp (Algebra.Rewrite.simplify plan);
      let optimized =
        if optimize then Algebra.Rewrite.optimize plan else Algebra.Rewrite.simplify plan
      in
      Format.fprintf ppf "optimized: %a@." Lp.pp optimized;
      let stats = Executor.statistics t.exec in
      let estimate, estimate_source, chosen =
        match optimized with
        | Lp.Tpm (_, pattern) ->
          Format.fprintf ppf "pattern:   %a@." Pg.pp pattern;
          Format.fprintf ppf "partition: %a@." Physical.Nok_partition.pp
            (Physical.Nok_partition.partition pattern);
          let est, src = Physical.Cost_model.estimate_plan_detail stats optimized in
          let src_label = Physical.Statistics.source_label src in
          Format.fprintf ppf "estimate:  %.1f rows (%s)@." est src_label;
          List.iter
            (fun eng ->
              if Physical.Cost_model.supports pattern eng then
                Format.fprintf ppf "cost[%s] = %.0f@."
                  (Physical.Cost_model.engine_name eng)
                  (Physical.Cost_model.estimate stats pattern eng))
            Physical.Cost_model.all_engines;
          let chosen =
            Physical.Cost_model.engine_name (Physical.Cost_model.choose stats pattern)
          in
          Format.fprintf ppf "chosen:    %s@." chosen;
          (Some est, Some src_label, chosen)
        | _ ->
          Format.fprintf ppf "(steps run navigationally)@.";
          (None, None, "navigation")
      in
      let physical, cache =
        Executor.compile_query_info t.exec ~strategy:engine ~optimize ~use_cache q
      in
      Format.fprintf ppf "plan cache: %s@." (Executor.cache_status_label cache);
      Format.fprintf ppf "physical:@.%a@." Pp.pp physical;
      Format.pp_print_flush ppf ();
      { rendered = Buffer.contents buffer; cache; estimate; estimate_source; chosen; physical })
