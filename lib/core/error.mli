(** The structured error surface of the session API ({!Session}) and the
    wire protocol ({!Response}, {!Server}).

    One closed variant covers every way a query can fail from a caller's
    point of view; each constructor carries a stable string [code] (what
    clients switch on) and a human [message]. The HTTP mapping lives here
    too so the CLI and the server can never disagree on a status line. *)

type t =
  | Parse of string      (** query text rejected by the XPath/XQuery parser *)
  | Eval of string       (** dynamic XQuery error *)
  | Timeout of { deadline_ms : int }
      (** the per-query deadline passed ({!Xqp_physical.Executor.Deadline_exceeded}) *)
  | Overloaded of { queue_depth : int }
      (** admission control rejected the request: the queue was full *)
  | Shutting_down        (** server draining; no new queries admitted *)
  | Bad_request of string  (** malformed request (missing parameter, bad engine name…) *)
  | Io of string         (** file/socket-level failure *)
  | Internal of string   (** anything unexpected; the message is the exception text *)

val code : t -> string
(** Stable machine code: ["parse"], ["eval"], ["timeout"], ["overloaded"],
    ["shutting-down"], ["bad-request"], ["io"], ["internal"]. *)

val message : t -> string

val http_status : t -> int
(** 400 for caller mistakes, 408 for {!Timeout}, 503 for {!Overloaded} and
    {!Shutting_down}, 500 otherwise. *)

val to_json : t -> Xqp_obs.Json.t
(** [{"code": …, "message": …}] plus [deadline_ms]/[queue_depth] detail
    fields where the constructor carries them. *)

val of_json : Xqp_obs.Json.t -> (t, string) result
(** Inverse of {!to_json} (the round-trip the response-schema test
    checks). *)

val pp : Format.formatter -> t -> unit

val to_exn : t -> exn
(** The exception the pre-session façade would have raised for this
    error — what the deprecated wrappers re-raise. *)

val raise_exn : t -> 'a
