(* Corpus catalog: N shard container files plus one .xqdbc manifest (see the
   .mli for the format). Shard paths are stored relative to the catalog file
   so a packed corpus directory can be moved wholesale. *)

let suffix = ".xqdbc"
let magic = "XQPCATLG"
let shard_magic = "XQPSHRD1"
let catalog_version = 1
let shard_version = 1

let is_catalog_path path = Filename.check_suffix path suffix

type shard = {
  shard_path : string;
  stats_version : int;
  doc_names : string array;
  summary : Path_summary.t;
}

type t = {
  dir : string;
  shards : shard array;
  merged : Path_summary.t;
  merged_stats_version : int;
  doc_bases : int array; (* global ordinal of each shard's first document *)
  doc_count : int;
}

let shard_count t = Array.length t.shards
let doc_count t = t.doc_count
let doc_base t shard = t.doc_bases.(shard)
let shard_file t shard = Filename.concat t.dir t.shards.(shard).shard_path

let doc_name t ordinal =
  let rec find shard =
    if shard + 1 < Array.length t.shards && t.doc_bases.(shard + 1) <= ordinal then
      find (shard + 1)
    else t.shards.(shard).doc_names.(ordinal - t.doc_bases.(shard))
  in
  if ordinal < 0 || ordinal >= t.doc_count || Array.length t.shards = 0 then
    invalid_arg "Catalog.doc_name"
  else find 0

let corrupt path what = failwith (Printf.sprintf "%s: corrupt catalog (%s)" path what)

(* --- shard containers --------------------------------------------------- *)

let read_i64_in s off =
  let v = ref 0 in
  for shift = 0 to 7 do
    v := !v lor (Char.code s.[off + shift] lsl (8 * shift))
  done;
  !v

(* Offset/length table of the per-document store images embedded in a shard
   container. *)
let shard_doc_table ~path contents =
  let len = String.length contents in
  if len < 24 then corrupt path "shard too small";
  if not (String.equal (String.sub contents 0 8) shard_magic) then
    corrupt path "bad shard magic";
  if read_i64_in contents 8 <> shard_version then corrupt path "shard version";
  let docs = read_i64_in contents 16 in
  if docs < 0 || 24 + (16 * docs) > len then corrupt path "shard doc count";
  Array.init docs (fun i ->
      let off = read_i64_in contents (24 + (16 * i)) in
      let img_len = read_i64_in contents (24 + (16 * i) + 8) in
      if off < 0 || img_len < 0 || off + img_len > len then corrupt path "shard doc bounds";
      (off, img_len))

let read_shard_images t shard =
  let path = shard_file t shard in
  let contents = Store_io.read_file path in
  let table = shard_doc_table ~path contents in
  Array.map (fun (off, len) -> String.sub contents off len) table

(* --- packing ------------------------------------------------------------ *)

let write_i64 oc v =
  for shift = 0 to 7 do
    output_char oc (Char.chr ((v lsr (8 * shift)) land 0xFF))
  done

let write_str oc s =
  write_i64 oc (String.length s);
  output_string oc s

let write_summary oc ~label_id summary =
  let rows = Path_summary.to_rows summary ~label_id in
  write_i64 oc (Array.length rows);
  Array.iter
    (fun r ->
      write_i64 oc r.Path_summary.r_parent;
      write_i64 oc r.Path_summary.r_label;
      write_i64 oc r.Path_summary.r_count;
      write_i64 oc r.Path_summary.r_flags)
    rows

(* Pack one shard: header, placeholder doc table, then the per-document
   store images streamed one at a time (only one document's store is ever
   in memory); finally seek back and fill the table in. Returns the
   per-document packed summaries. *)
let pack_shard ~path docs =
  let n = Array.length docs in
  let summaries = Array.make n None in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc shard_magic;
      write_i64 oc shard_version;
      write_i64 oc n;
      let table_pos = pos_out oc in
      for _ = 1 to n do
        write_i64 oc 0;
        write_i64 oc 0
      done;
      let table = Array.make n (0, 0) in
      Array.iteri
        (fun i (_, produce) ->
          let doc = produce () in
          let image = Store_io.to_bytes (Succinct_store.of_document doc) in
          table.(i) <- (pos_out oc, String.length image);
          output_string oc image;
          summaries.(i) <- Some (Store_io.packed_summary ~path image))
        docs;
      seek_out oc table_pos;
      Array.iter
        (fun (off, len) ->
          write_i64 oc off;
          write_i64 oc len)
        table);
  Array.map (function Some s -> s | None -> assert false) summaries

let pack ?(shards = 4) ~output docs =
  if not (is_catalog_path output) then
    invalid_arg (Printf.sprintf "Catalog.pack: output must end in %s" suffix);
  let docs = Array.of_list docs in
  let n = Array.length docs in
  if n = 0 then invalid_arg "Catalog.pack: empty corpus";
  let shards = max 1 (min shards n) in
  let dir = Filename.dirname output in
  let base = Filename.remove_extension (Filename.basename output) in
  (* Contiguous partition, so catalog order × within-shard order is input
     order — the global document order scatter-gather merges back into. *)
  let per = n / shards and rem = n mod shards in
  let bounds =
    Array.init shards (fun k ->
        let start = (k * per) + min k rem in
        let len = per + if k < rem then 1 else 0 in
        (start, len))
  in
  let shard_records =
    Array.mapi
      (fun k (start, len) ->
        let rel = Printf.sprintf "%s.shard%03d.xqdb" base k in
        let group = Array.sub docs start len in
        let doc_summaries = pack_shard ~path:(Filename.concat dir rel) group in
        {
          shard_path = rel;
          stats_version = 1;
          doc_names = Array.map fst group;
          summary = Path_summary.merge (Array.to_list doc_summaries);
        })
      bounds
  in
  let merged = Path_summary.merge (Array.to_list (Array.map (fun s -> s.summary) shard_records)) in
  let merged_stats_version =
    Array.fold_left (fun acc s -> max acc s.stats_version) 1 shard_records
  in
  (* One shared label table: every shard path also appears in the merged
     summary, so the merged label set covers all shard summaries. *)
  let labels = Hashtbl.create 64 in
  let label_list = ref [] in
  let intern lab =
    match Hashtbl.find_opt labels lab with
    | Some id -> id
    | None ->
        let id = Hashtbl.length labels in
        Hashtbl.replace labels lab id;
        label_list := lab :: !label_list;
        id
  in
  for i = 0 to Path_summary.length merged - 1 do
    ignore (intern (Path_summary.label merged i))
  done;
  let label_id lab =
    match Hashtbl.find_opt labels lab with
    | Some id -> id
    | None -> invalid_arg (Printf.sprintf "Catalog.pack: shard label %S not in merged summary" lab)
  in
  let oc = open_out_bin output in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      write_i64 oc catalog_version;
      write_i64 oc shards;
      write_i64 oc n;
      write_i64 oc merged_stats_version;
      let table = Array.of_list (List.rev !label_list) in
      write_i64 oc (Array.length table);
      Array.iter (write_str oc) table;
      write_summary oc ~label_id merged;
      Array.iter
        (fun s ->
          write_str oc s.shard_path;
          write_i64 oc s.stats_version;
          write_i64 oc (Array.length s.doc_names);
          Array.iter (write_str oc) s.doc_names;
          write_summary oc ~label_id s.summary)
        shard_records);
  let doc_bases = Array.map fst bounds in
  { dir; shards = shard_records; merged; merged_stats_version; doc_bases; doc_count = n }

(* --- loading ------------------------------------------------------------ *)

(* A tiny cursor over the catalog bytes; every read is bounds-checked so a
   truncated or garbled file fails with [corrupt] rather than an index
   exception. *)
type cursor = { buf : string; mutable pos : int; cpath : string }

let need cur n =
  if cur.pos + n > String.length cur.buf then corrupt cur.cpath "truncated"

let cur_i64 cur =
  need cur 8;
  let v = read_i64_in cur.buf cur.pos in
  cur.pos <- cur.pos + 8;
  v

let cur_str cur =
  let len = cur_i64 cur in
  if len < 0 then corrupt cur.cpath "negative length";
  need cur len;
  let s = String.sub cur.buf cur.pos len in
  cur.pos <- cur.pos + len;
  s

let cur_summary cur ~label_of =
  let count = cur_i64 cur in
  if count < 0 then corrupt cur.cpath "negative summary count";
  let rows =
    Array.init count (fun _ ->
        let r_parent = cur_i64 cur in
        let r_label = cur_i64 cur in
        let r_count = cur_i64 cur in
        let r_flags = cur_i64 cur in
        { Path_summary.r_parent; r_label; r_count; r_flags })
  in
  match Path_summary.of_rows rows ~label_of with
  | summary -> summary
  | exception Failure _ -> corrupt cur.cpath "summary table"

let of_bytes ~path contents =
  if String.length contents < 16 then corrupt path "too small";
  if not (String.equal (String.sub contents 0 8) magic) then corrupt path "bad magic";
  let cur = { buf = contents; pos = 8; cpath = path } in
  let file_version = cur_i64 cur in
  if file_version <> catalog_version then
    failwith
      (Printf.sprintf "%s: unsupported catalog version %d (expected %d)" path file_version
         catalog_version);
  let shards = cur_i64 cur in
  let n = cur_i64 cur in
  let merged_stats_version = cur_i64 cur in
  if shards < 1 || n < shards then corrupt path "shard/doc counts";
  let label_count = cur_i64 cur in
  if label_count < 0 then corrupt path "label count";
  let table = Array.init label_count (fun _ -> cur_str cur) in
  let label_of id =
    if id < 0 || id >= label_count then corrupt path "label id" else table.(id)
  in
  let merged = cur_summary cur ~label_of in
  let shard_records =
    Array.init shards (fun _ ->
        let shard_path = cur_str cur in
        let stats_version = cur_i64 cur in
        let doc_n = cur_i64 cur in
        if doc_n < 0 then corrupt path "shard doc count";
        let doc_names = Array.init doc_n (fun _ -> cur_str cur) in
        let summary = cur_summary cur ~label_of in
        { shard_path; stats_version; doc_names; summary })
  in
  if cur.pos <> String.length contents then corrupt path "trailing bytes";
  let doc_bases = Array.make shards 0 in
  let total = ref 0 in
  Array.iteri
    (fun i s ->
      doc_bases.(i) <- !total;
      total := !total + Array.length s.doc_names)
    shard_records;
  if !total <> n then corrupt path "doc count mismatch";
  {
    dir = Filename.dirname path;
    shards = shard_records;
    merged;
    merged_stats_version;
    doc_bases;
    doc_count = n;
  }

let load path = of_bytes ~path (Store_io.read_file path)
