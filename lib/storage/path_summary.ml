(* DataGuide-style path summary (see the .mli). The canonical form — nodes in
   pre-order, siblings sorted by label — makes equality of two summaries plain
   array equality, which is what the Store_io load-time cross-check and the
   fsck invariants rely on. *)

type t = {
  labels : string array;
  parents : int array; (* -1 for root-level paths *)
  counts : int array;
  text_flags : bool array;
  child_lists : int list array; (* label-sorted *)
  root_list : int list;
  child_index : (int * string, int) Hashtbl.t; (* (parent | -1, label) -> id *)
}

let super_root = -1

let is_element_label l =
  String.length l = 0 || (l.[0] <> '@' && l.[0] <> '#' && l.[0] <> '?')

(* Derive navigation structures from canonical parallel arrays. Children are
   appended in array order, which is label-sorted order in canonical form. *)
let make ~labels ~parents ~counts ~text_flags =
  let n = Array.length labels in
  let child_lists = Array.make (max 1 n) [] in
  let roots = ref [] in
  let child_index = Hashtbl.create (max 16 n) in
  for i = n - 1 downto 0 do
    let p = parents.(i) in
    if p = super_root then roots := i :: !roots else child_lists.(p) <- i :: child_lists.(p);
    Hashtbl.replace child_index (p, labels.(i)) i
  done;
  { labels; parents; counts; text_flags; child_lists; root_list = !roots; child_index }

let length t = Array.length t.labels
let label t i = t.labels.(i)
let parent t i = t.parents.(i)
let count t i = t.counts.(i)
let has_text t i = t.text_flags.(i)
let children t i = t.child_lists.(i)
let roots t = t.root_list

let node_path t i =
  let rec up i acc = if i = super_root then acc else up t.parents.(i) (t.labels.(i) :: acc) in
  up i []

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  let rec go indent id =
    Format.fprintf fmt "%s%s  count=%d%s@," indent t.labels.(id) t.counts.(id)
      (if t.text_flags.(id) then " text" else "");
    List.iter (go (indent ^ "  ")) t.child_lists.(id)
  in
  List.iter (go "") t.root_list;
  Format.fprintf fmt "@]"

(* --- construction ------------------------------------------------------- *)

module Builder = struct
  type builder = {
    mutable b_labels : string array;
    mutable b_parents : int array;
    mutable b_counts : int array;
    mutable b_texts : bool array;
    mutable b_len : int;
    b_index : (int * string, int) Hashtbl.t;
    mutable b_stack : int list; (* summary id per open node; -2 = non-path *)
  }

  let non_path = -2

  let create () =
    {
      b_labels = Array.make 16 "";
      b_parents = Array.make 16 0;
      b_counts = Array.make 16 0;
      b_texts = Array.make 16 false;
      b_len = 0;
      b_index = Hashtbl.create 64;
      b_stack = [];
    }

  let grow b =
    let cap = Array.length b.b_labels in
    if b.b_len = cap then begin
      let resize a fill = Array.append a (Array.make cap fill) in
      b.b_labels <- resize b.b_labels "";
      b.b_parents <- resize b.b_parents 0;
      b.b_counts <- resize b.b_counts 0;
      b.b_texts <- resize b.b_texts false
    end

  let enter b parent lab =
    match Hashtbl.find_opt b.b_index (parent, lab) with
    | Some id ->
        b.b_counts.(id) <- b.b_counts.(id) + 1;
        id
    | None ->
        grow b;
        let id = b.b_len in
        b.b_len <- id + 1;
        b.b_labels.(id) <- lab;
        b.b_parents.(id) <- parent;
        b.b_counts.(id) <- 1;
        Hashtbl.replace b.b_index (parent, lab) id;
        id

  (* Like [enter] but adds a whole pre-counted subpopulation at once — the
     grafting primitive behind [merge]. *)
  let add b parent lab ~count ~text =
    let id =
      match Hashtbl.find_opt b.b_index (parent, lab) with
      | Some id ->
          b.b_counts.(id) <- b.b_counts.(id) + count;
          id
      | None ->
          grow b;
          let id = b.b_len in
          b.b_len <- id + 1;
          b.b_labels.(id) <- lab;
          b.b_parents.(id) <- parent;
          b.b_counts.(id) <- count;
          Hashtbl.replace b.b_index (parent, lab) id;
          id
    in
    if text then b.b_texts.(id) <- true;
    id

  let open_node b lab =
    let parent = match b.b_stack with top :: _ -> top | [] -> super_root in
    if parent = non_path then b.b_stack <- non_path :: b.b_stack
    else if is_element_label lab || (String.length lab > 0 && lab.[0] = '@') then
      b.b_stack <- enter b parent lab :: b.b_stack
    else begin
      if String.equal lab "#text" && parent >= 0 then b.b_texts.(parent) <- true;
      b.b_stack <- non_path :: b.b_stack
    end

  let close_node b =
    match b.b_stack with
    | _ :: rest -> b.b_stack <- rest
    | [] -> failwith "Path_summary.Builder: close without open"

  (* Canonicalize: renumber into pre-order with siblings sorted by label. *)
  let finish b =
    if b.b_stack <> [] then failwith "Path_summary.Builder: unclosed node";
    let n = b.b_len in
    let raw_children = Array.make (max 1 n) [] in
    let raw_roots = ref [] in
    for i = n - 1 downto 0 do
      let p = b.b_parents.(i) in
      if p = super_root then raw_roots := i :: !raw_roots
      else raw_children.(p) <- i :: raw_children.(p)
    done;
    let by_label ids = List.sort (fun a b' -> String.compare b.b_labels.(a) b.b_labels.(b')) ids in
    let order = Array.make (max 1 n) (-1) in
    let next = ref 0 in
    let rec assign old =
      order.(old) <- !next;
      incr next;
      List.iter assign (by_label raw_children.(old))
    in
    List.iter assign (by_label !raw_roots);
    let labels = Array.make n "" and parents = Array.make n super_root in
    let counts = Array.make n 0 and text_flags = Array.make n false in
    for old = 0 to n - 1 do
      let i = order.(old) in
      labels.(i) <- b.b_labels.(old);
      parents.(i) <- (let p = b.b_parents.(old) in if p = super_root then super_root else order.(p));
      counts.(i) <- b.b_counts.(old);
      text_flags.(i) <- b.b_texts.(old)
    done;
    make ~labels ~parents ~counts ~text_flags
end

let of_document doc =
  let module Doc = Xqp_xml.Document in
  let b = Builder.create () in
  let n = Doc.node_count doc in
  let stack = ref [] in
  for id = 0 to n - 1 do
    while (match !stack with e :: _ -> e < id | [] -> false) do
      Builder.close_node b;
      stack := List.tl !stack
    done;
    let lab =
      match Doc.kind doc id with
      | Doc.Element -> Doc.name doc id
      | Doc.Attribute -> "@" ^ Doc.name doc id
      | Doc.Text -> "#text"
      | Doc.Comment -> "#comment"
      | Doc.Pi -> "#pi"
    in
    Builder.open_node b lab;
    stack := Doc.subtree_end doc id :: !stack
  done;
  List.iter (fun _ -> Builder.close_node b) !stack;
  Builder.finish b

(* --- merging ------------------------------------------------------------ *)

(* Union of path sets with summed counts and or'd text flags: graft every
   input tree into one builder, then canonicalize. The result is what
   [of_document] would produce over the concatenation of the inputs'
   documents, which is the invariant corpus fsck checks. *)
let merge ts =
  let b = Builder.create () in
  List.iter
    (fun t ->
      let rec graft parent id =
        let nid =
          Builder.add b parent t.labels.(id) ~count:t.counts.(id) ~text:t.text_flags.(id)
        in
        List.iter (graft nid) t.child_lists.(id)
      in
      List.iter (graft super_root) t.root_list)
    ts;
  Builder.finish b

(* Canonical form makes structural equality plain array equality. *)
let equal a b =
  a.labels = b.labels && a.parents = b.parents && a.counts = b.counts
  && a.text_flags = b.text_flags

(* --- path matching ------------------------------------------------------ *)

type selector = Label of string | Any_element | Any_attribute
type step = { descendant : bool; selector : selector }

let selector_matches t sel id =
  let l = t.labels.(id) in
  match sel with
  | Label s -> String.equal s l
  | Any_element -> is_element_label l
  | Any_attribute -> String.length l > 0 && l.[0] = '@'

let children_of t id = if id = super_root then t.root_list else t.child_lists.(id)

let matching_from t from steps =
  let n = max 1 (length t) in
  let apply current step =
    let seen = Array.make n false in
    let out = ref [] in
    let visit id =
      if not seen.(id) then begin
        seen.(id) <- true;
        if selector_matches t step.selector id then out := id :: !out
      end
    in
    if step.descendant then begin
      let visited = Array.make n false in
      let rec down id =
        List.iter
          (fun c ->
            if not visited.(c) then begin
              visited.(c) <- true;
              visit c;
              down c
            end)
          (children_of t id)
      in
      List.iter down current
    end
    else List.iter (fun id -> List.iter visit (children_of t id)) current;
    List.sort compare !out
  in
  List.fold_left apply (List.sort_uniq compare from) steps

let matching t steps = matching_from t [ super_root ] steps

let total_count t ids =
  List.fold_left (fun acc id -> acc + if id = super_root then 1 else t.counts.(id)) 0 ids

let descendant_or_self_set t ids =
  let marks = Array.make (max 1 (length t)) false in
  let rec down id =
    List.iter
      (fun c ->
        if not marks.(c) then begin
          marks.(c) <- true;
          down c
        end)
      (children_of t id)
  in
  List.iter
    (fun id ->
      if id = super_root then Array.fill marks 0 (Array.length marks) true
      else if not marks.(id) then begin
        marks.(id) <- true;
        down id
      end)
    ids;
  marks

let skip_labels t ~targets ~self =
  let allowed = Hashtbl.create 16 in
  let marked = Array.make (max 1 (length t)) false in
  let rec up id =
    if id >= 0 && not marked.(id) then begin
      marked.(id) <- true;
      Hashtbl.replace allowed t.labels.(id) ();
      up t.parents.(id)
    end
  in
  List.iter (fun tgt -> if tgt >= 0 then up (if self then tgt else t.parents.(tgt))) targets;
  fun lab -> not (Hashtbl.mem allowed lab)

(* --- per-node path ids -------------------------------------------------- *)

let annotate t doc =
  let module Doc = Xqp_xml.Document in
  let n = Doc.node_count doc in
  let pids = Array.make n (-1) in
  let stack = ref [] in
  let lookup parent lab =
    match Hashtbl.find_opt t.child_index (parent, lab) with
    | Some id -> id
    | None -> failwith (Printf.sprintf "Path_summary.annotate: path %s not in summary" lab)
  in
  for id = 0 to n - 1 do
    while (match !stack with (e, _) :: _ -> e < id | [] -> false) do
      stack := List.tl !stack
    done;
    let parent_sid = match !stack with (_, s) :: _ -> s | [] -> super_root in
    match Doc.kind doc id with
    | Doc.Element ->
        let sid = lookup parent_sid (Doc.name doc id) in
        pids.(id) <- sid;
        stack := (Doc.subtree_end doc id, sid) :: !stack
    | Doc.Attribute -> pids.(id) <- lookup parent_sid ("@" ^ Doc.name doc id)
    | Doc.Text | Doc.Comment | Doc.Pi -> ()
  done;
  pids

(* --- serialization ------------------------------------------------------ *)

type row = { r_parent : int; r_label : int; r_count : int; r_flags : int }

let flag_text = 1

let to_rows t ~label_id =
  Array.init (length t) (fun i ->
      {
        r_parent = t.parents.(i) + 1;
        r_label = label_id t.labels.(i);
        r_count = t.counts.(i);
        r_flags = (if t.text_flags.(i) then flag_text else 0);
      })

let of_rows rows ~label_of =
  let n = Array.length rows in
  let bad what = failwith (Printf.sprintf "Path_summary.of_rows: %s" what) in
  let labels = Array.make n "" and parents = Array.make n super_root in
  let counts = Array.make n 0 and text_flags = Array.make n false in
  let last_child = Hashtbl.create (max 16 n) in
  for i = 0 to n - 1 do
    let r = rows.(i) in
    if r.r_parent < 0 || r.r_parent > i then bad "parent order";
    if r.r_count < 1 then bad "non-positive count";
    if r.r_flags land lnot flag_text <> 0 then bad "unknown flags";
    let p = r.r_parent - 1 in
    let lab = label_of r.r_label in
    (match Hashtbl.find_opt last_child p with
    | Some prev when String.compare prev lab >= 0 -> bad "sibling sort order"
    | _ -> ());
    Hashtbl.replace last_child p lab;
    labels.(i) <- lab;
    parents.(i) <- p;
    counts.(i) <- r.r_count;
    text_flags.(i) <- r.r_flags land flag_text <> 0
  done;
  make ~labels ~parents ~counts ~text_flags
