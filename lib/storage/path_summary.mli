(** DataGuide-style path summary: every distinct root-to-node label path with
    its exact occurrence count.

    The summary of a document is a tree whose nodes are the distinct
    root-to-element (and root-to-attribute) label paths; each summary node
    carries the exact number of document nodes reachable by its path, plus a
    flag recording whether any of those nodes has a text child. Text, comment
    and PI nodes never become summary nodes — they only feed the text flag of
    their parent path.

    On tree-shaped data the summary is tiny (one node per distinct path) and
    answers three planner questions exactly:

    - the cardinality of any downward linear path ([/] steps), including
      descendant ([//]) steps — the sum of counts over matching summary
      nodes is exact, not a bound, because every document node lies on
      exactly one root path;
    - emptiness of a pattern's projected path set (no matching summary node
      means no document node can match, predicates notwithstanding);
    - "no match below this tag" sets that let navigation jump over whole
      subtrees.

    Labels follow the store symbol conventions: element names verbatim,
    attributes ["@name"]. Labels starting with ['#'] or ['?'] (text,
    comment, PI markers) are accepted by the builder but never create
    summary nodes. Canonical form is pre-order with siblings sorted by
    label, so [parent i < i] for every non-root node and the serialized
    table is fsck-checkable. *)

type t

(** {2 Construction} *)

(** Event-driven construction — one pass over a SAX-shaped stream of
    open/close events in document order. *)
module Builder : sig
  type builder

  val create : unit -> builder

  val open_node : builder -> string -> unit
  (** [open_node b label] enters a node. Element and ["@name"] labels extend
      the current path (creating or counting a summary node); ["#text"] sets
      the text flag of the enclosing element path; other ['#']/['?'] labels
      are structural no-ops. Every [open_node] must be matched by a
      {!close_node}. *)

  val close_node : builder -> unit
  val finish : builder -> t
  (** Canonicalize into pre-order with label-sorted siblings. The builder
      must be balanced (every open closed). *)
end

val of_document : Xqp_xml.Document.t -> t
(** One pre-order pass over a packed document. *)

val merge : t list -> t
(** Union of the inputs' path sets with per-path counts summed and text
    flags or'd — the summary [of_document] would build over the inputs'
    documents laid side by side. This is the corpus-catalog merged
    summary: exactness of linear-path cardinalities is preserved because
    every document node still lies on exactly one root path. O(total
    summary nodes). *)

val equal : t -> t -> bool
(** Structural equality (labels, parents, counts, text flags). Both sides
    being canonical, this is plain array equality. *)

(** {2 Structure access} *)

val length : t -> int
val label : t -> int -> string
val parent : t -> int -> int
(** Parent summary node, [-1] for root-level paths. *)

val count : t -> int -> int
(** Exact number of document nodes on this path. *)

val has_text : t -> int -> bool
(** Does any document node on this path have a text-node child? *)

val children : t -> int -> int list
(** Children in label-sorted order. *)

val roots : t -> int list
val node_path : t -> int -> string list
(** Root-to-node label path, for diagnostics. *)

val pp : Format.formatter -> t -> unit

(** {2 Path matching} *)

val super_root : int
(** Virtual node above the root-level paths; the starting point of absolute
    path evaluation ([matching_from t [super_root] steps]). *)

type selector =
  | Label of string  (** exact label: element name or ["@name"] *)
  | Any_element
  | Any_attribute

type step = { descendant : bool; selector : selector }
(** One downward step: direct children when [descendant] is false, proper
    descendants otherwise, filtered by [selector]. *)

val matching_from : t -> int list -> step list -> int list
(** Evaluate a step list over the summary from a set of summary nodes
    (which may include {!super_root}). Result is sorted and duplicate-free. *)

val matching : t -> step list -> int list
(** [matching t steps] is [matching_from t [super_root] steps]. *)

val total_count : t -> int list -> int
(** Sum of {!count} over a node set ({!super_root} counts as 1). *)

val descendant_or_self_set : t -> int list -> bool array
(** Membership array (length {!length}) of the descendant-or-self closure
    of a node set; [super_root] marks everything. *)

val skip_labels : t -> targets:int list -> self:bool -> string -> bool
(** [skip_labels t ~targets ~self label] is [true] when no target node is a
    proper descendant ([self = false]) or descendant-or-self ([self = true])
    of any summary node with that label — i.e. the whole subtree below any
    document node labeled [label] can be skipped when searching for the
    targets. Labels absent from the summary are skippable. *)

val is_element_label : string -> bool
(** Classifies by leading character: not ['@'], ['#'] or ['?']. *)

(** {2 Per-node path ids (path partitioning)} *)

val annotate : t -> Xqp_xml.Document.t -> int array
(** [annotate t doc] maps every document node to its summary node id ([-1]
    for text/comment/PI nodes). [t] must be the summary of [doc]. *)

(** {2 Serialization (used by Store_io)} *)

type row = { r_parent : int; r_label : int; r_count : int; r_flags : int }
(** One canonical-order node: [r_parent] is parent + 1 (0 = root level) so
    the encoding stays non-negative, [r_label] a caller-chosen symbol id,
    [r_flags] bit 0 = has_text. *)

val flag_text : int

val to_rows : t -> label_id:(string -> int) -> row array
val of_rows : row array -> label_of:(int -> string) -> t
(** Rebuild from serialized rows. @raise Failure on a malformed table
    (parent order, duplicate or unsorted siblings, bad flags). *)
