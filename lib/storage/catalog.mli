(** Corpus catalogs: many documents packed into sharded store files plus
    one manifest the planner and scatter-gather executor drive from.

    A packed corpus is N {e shard container} files — each a small header
    plus complete {!Store_io} v4 store images laid back to back, one per
    document — and one [.xqdbc] catalog holding the manifest (relative
    shard paths, per-shard stats versions, document names), one packed
    {!Path_summary} per shard, and the {e merged} summary (the
    {!Path_summary.merge} of the shard summaries). Everything the
    optimizer needs — merged cardinalities for planning, per-shard
    summaries for provably-empty-shard pruning — lives in the catalog, so
    opening a corpus reads one small file and pruned shards are never
    opened at all.

    Shard container layout (["XQPSHRD1"], little-endian i64s):
    magic (8) · version · doc_count · doc table (offset, length per doc)
    · store images. Catalog layout (["XQPCATLG"]): magic (8) · version ·
    shard_count · doc_count · merged stats version · label table
    (length-prefixed strings) · merged summary rows · per shard: relative
    path, stats version, doc names, summary rows. All summaries share the
    catalog label table (shard labels are a subset of merged labels).

    Global document order is catalog order × within-shard order: shard
    [k]'s documents occupy ordinals [doc_base t k ..
    doc_base t k + docs - 1], in input order (packing partitions the
    input contiguously). *)

type shard = {
  shard_path : string;  (** relative to the catalog file's directory *)
  stats_version : int;
  doc_names : string array;
  summary : Path_summary.t;  (** merge of the shard's document summaries *)
}

type t = {
  dir : string;  (** catalog directory, resolves [shard_path] *)
  shards : shard array;
  merged : Path_summary.t;
  merged_stats_version : int;
  doc_bases : int array;
  doc_count : int;
}

val suffix : string
(** [".xqdbc"] *)

val is_catalog_path : string -> bool
val magic : string
val shard_magic : string

val shard_count : t -> int
val doc_count : t -> int

val doc_base : t -> int -> int
(** Global ordinal of a shard's first document. *)

val doc_name : t -> int -> string
(** Name of the document at a global ordinal. *)

val shard_file : t -> int -> string
(** Resolved path of a shard container. *)

val pack :
  ?shards:int -> output:string -> (string * (unit -> Xqp_xml.Document.t)) list -> t
(** [pack ~output docs] packs named documents into [shards] (default 4,
    clamped to the document count) container files next to [output]
    (named [<base>.shard<k>.xqdb]) and writes the catalog. Documents are
    produced one at a time — only one document's store is ever resident —
    and partitioned contiguously in list order.
    @raise Invalid_arg if [output] lacks the [.xqdbc] suffix or [docs] is
    empty. @raise Sys_error on I/O failure. *)

val load : string -> t
(** Read a catalog (not the shard files). @raise Failure on a malformed
    catalog; @raise Sys_error on I/O failure. *)

val of_bytes : path:string -> string -> t
(** {!load} from bytes already in memory ([path] resolves shard paths and
    labels errors) — how fsck parses a catalog it has already read. *)

val read_shard_images : t -> int -> string array
(** All store images of one shard container, in document order. @raise
    Failure on a malformed container. *)

val shard_doc_table : path:string -> string -> (int * int) array
(** Offset/length table of a shard container's embedded images, for
    callers (fsck) that address the raw bytes themselves. *)
