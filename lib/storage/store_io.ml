let magic = "XQPSTORE"
let version = 4

(* Format v4 — fixed-size header, then sections at computable offsets so a
   paged reader can address them without scanning:

     magic (8 bytes)          "XQPSTORE"
     version                  i64
     node_count n             i64
     tag_width w              i64 (1 or 2)
     structure_bit_len        i64 (= 2n)
     structure_byte_len       i64
     flags_bit_len            i64 (= n)
     flags_byte_len           i64
     symbol_count             i64
     symbol_blob_len          i64
     content_count            i64
     content_blob_len         i64
     dir_block_count          i64 (= ceil(structure_bit_len / 256))
     flag_sample_count        i64 (= ceil(flags_bit_len / 256) + 1)
     psum_count               i64 (path-summary nodes)
   sections, in order:
     structure bytes          structure_byte_len
     tag bytes                n * w
     has-content bytes        flags_byte_len
     symbol offsets           (symbol_count + 1) × i64 (into the blob)
     symbol blob              symbol_blob_len
     content offsets          (content_count + 1) × i64
     content blob             content_blob_len
     structure excess dir     dir_block_count × 5 × i16 (delta, fmin,
                              fmax, bmin, bmax per 256-bit block)
     flag rank samples        flag_sample_count × i64 (rank1 of the flag
                              bits at each 256-bit boundary, then total)
     path summary             psum_count × 4 × i64 (parent + 1, label
                              symbol id, exact count, flags; canonical
                              pre-order, siblings label-sorted)

   All integers little-endian; the i16 directory entries are signed
   (values lie in [-256, 256]). Serializing the navigation directories
   (v3) lets {!Paged_store} open a file without streaming the structure
   section; {!load} cross-checks them against recomputed ones, so
   corruption is detected. The path summary (v4) is the planner's
   cardinality synopsis, likewise recomputed and cross-checked at load.
   Word-level rank directories remain derived data and are rebuilt by the
   reader. *)

let header_bytes = 8 + (8 * 14)

type layout = {
  node_count : int;
  tag_width : int;
  structure_bit_len : int;
  structure_off : int;
  structure_byte_len : int;
  tags_off : int;
  flags_bit_len : int;
  flags_off : int;
  flags_byte_len : int;
  symbol_count : int;
  symbol_offsets_off : int;
  symbol_blob_off : int;
  content_count : int;
  content_offsets_off : int;
  content_blob_off : int;
  dir_block_count : int;
  dir_off : int;
  flag_sample_count : int;
  flag_samples_off : int;
  psum_count : int;
  psum_off : int;
}

let dir_blocks_for bit_len = (bit_len + Excess_dir.block_bits - 1) / Excess_dir.block_bits
let flag_samples_for bit_len = dir_blocks_for bit_len + 1
let psum_row_bytes = 32

let layout_of_fields ~node_count ~tag_width ~structure_bit_len ~structure_byte_len ~flags_bit_len
    ~flags_byte_len ~symbol_count ~symbol_blob_len ~content_count ~content_blob_len
    ~dir_block_count ~flag_sample_count ~psum_count =
  let structure_off = header_bytes in
  let tags_off = structure_off + structure_byte_len in
  let flags_off = tags_off + (node_count * tag_width) in
  let symbol_offsets_off = flags_off + flags_byte_len in
  let symbol_blob_off = symbol_offsets_off + (8 * (symbol_count + 1)) in
  let content_offsets_off = symbol_blob_off + symbol_blob_len in
  let content_blob_off = content_offsets_off + (8 * (content_count + 1)) in
  let dir_off = content_blob_off + content_blob_len in
  let flag_samples_off = dir_off + (dir_block_count * 10) in
  let psum_off = flag_samples_off + (8 * flag_sample_count) in
  {
    node_count;
    tag_width;
    structure_bit_len;
    structure_off;
    structure_byte_len;
    tags_off;
    flags_bit_len;
    flags_off;
    flags_byte_len;
    symbol_count;
    symbol_offsets_off;
    symbol_blob_off;
    content_count;
    content_offsets_off;
    content_blob_off;
    dir_block_count;
    dir_off;
    flag_sample_count;
    flag_samples_off;
    psum_count;
    psum_off;
  }

(* Rebuild the path summary from the raw sections — a single pass over the
   balanced-parentheses bits driving the builder with the store labels. Used
   by [save] (to serialize it) and by [load] (to cross-check the serialized
   copy, like the excess directory). *)
let summary_of_raw (raw : Succinct_store.raw) =
  let b = Path_summary.Builder.create () in
  let bits = Bitvector.length raw.Succinct_store.structure in
  let rank = ref 0 in
  for i = 0 to bits - 1 do
    if Bitvector.get raw.Succinct_store.structure i then begin
      Path_summary.Builder.open_node b
        raw.Succinct_store.symbols.(raw.Succinct_store.tag_ids.(!rank));
      incr rank
    end
    else Path_summary.Builder.close_node b
  done;
  Path_summary.Builder.finish b

let summary_of_store store = summary_of_raw (Succinct_store.to_raw store)

(* --- writing ----------------------------------------------------------- *)

let buf_i64 buf v =
  for shift = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * shift)) land 0xFF))
  done

let buf_i16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let blob_of arr =
  let buffer = Buffer.create 256 in
  let offsets = Array.make (Array.length arr + 1) 0 in
  Array.iteri
    (fun i s ->
      offsets.(i) <- Buffer.length buffer;
      Buffer.add_string buffer s)
    arr;
  offsets.(Array.length arr) <- Buffer.length buffer;
  (offsets, Buffer.contents buffer)

let to_bytes store =
  let raw = Succinct_store.to_raw store in
  let n = Array.length raw.Succinct_store.tag_ids in
  let symbol_count = Array.length raw.Succinct_store.symbols in
  let tag_width = if symbol_count <= 256 then 1 else 2 in
  let structure_bytes, structure_bit_len =
    Bitvector.to_packed_bytes raw.Succinct_store.structure
  in
  let flags_bytes, flags_bit_len = Bitvector.to_packed_bytes raw.Succinct_store.content_flags in
  let symbol_offsets, symbol_blob = blob_of raw.Succinct_store.symbols in
  let content_offsets, content_blob = blob_of raw.Succinct_store.contents in
  let dir =
    Excess_dir.create ~len:structure_bit_len ~byte:(fun i ->
        Char.code (Bytes.get structure_bytes i))
  in
  let blk = Excess_dir.blocks dir in
  let dir_block_count = dir_blocks_for structure_bit_len in
  let flag_sample_count = flag_samples_for flags_bit_len in
  let summary = summary_of_raw raw in
  let label_ids = Hashtbl.create (max 16 symbol_count) in
  Array.iteri (fun i s -> Hashtbl.replace label_ids s i) raw.Succinct_store.symbols;
  let psum_rows = Path_summary.to_rows summary ~label_id:(Hashtbl.find label_ids) in
  let buf = Buffer.create (4096 + (Bytes.length structure_bytes * 4)) in
  Buffer.add_string buf magic;
  buf_i64 buf version;
  buf_i64 buf n;
  buf_i64 buf tag_width;
  buf_i64 buf structure_bit_len;
  buf_i64 buf (Bytes.length structure_bytes);
  buf_i64 buf flags_bit_len;
  buf_i64 buf (Bytes.length flags_bytes);
  buf_i64 buf symbol_count;
  buf_i64 buf (String.length symbol_blob);
  buf_i64 buf (Array.length raw.Succinct_store.contents);
  buf_i64 buf (String.length content_blob);
  buf_i64 buf dir_block_count;
  buf_i64 buf flag_sample_count;
  buf_i64 buf (Array.length psum_rows);
  Buffer.add_bytes buf structure_bytes;
  (* tag section *)
  Array.iter
    (fun tag ->
      Buffer.add_char buf (Char.chr (tag land 0xFF));
      if tag_width = 2 then Buffer.add_char buf (Char.chr ((tag lsr 8) land 0xFF)))
    raw.Succinct_store.tag_ids;
  Buffer.add_bytes buf flags_bytes;
  Array.iter (buf_i64 buf) symbol_offsets;
  Buffer.add_string buf symbol_blob;
  Array.iter (buf_i64 buf) content_offsets;
  Buffer.add_string buf content_blob;
  for b = 0 to dir_block_count - 1 do
    buf_i16 buf blk.Excess_dir.delta.(b);
    buf_i16 buf blk.Excess_dir.fmin.(b);
    buf_i16 buf blk.Excess_dir.fmax.(b);
    buf_i16 buf blk.Excess_dir.bmin.(b);
    buf_i16 buf blk.Excess_dir.bmax.(b)
  done;
  for s = 0 to flag_sample_count - 1 do
    let boundary = min flags_bit_len (s * Excess_dir.block_bits) in
    buf_i64 buf (Bitvector.rank1 raw.Succinct_store.content_flags boundary)
  done;
  Array.iter
    (fun r ->
      buf_i64 buf r.Path_summary.r_parent;
      buf_i64 buf r.Path_summary.r_label;
      buf_i64 buf r.Path_summary.r_count;
      buf_i64 buf r.Path_summary.r_flags)
    psum_rows;
  Buffer.contents buf

let save store path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_bytes store))

(* --- reading the header ------------------------------------------------ *)

let corrupt path what = failwith (Printf.sprintf "%s: corrupt store file (%s)" path what)

let read_layout_from read_i64 ~path ~total_size =
  let node_count = read_i64 8 in
  let tag_width = read_i64 16 in
  let structure_bit_len = read_i64 24 in
  let structure_byte_len = read_i64 32 in
  let flags_bit_len = read_i64 40 in
  let flags_byte_len = read_i64 48 in
  let symbol_count = read_i64 56 in
  let symbol_blob_len = read_i64 64 in
  let content_count = read_i64 72 in
  let content_blob_len = read_i64 80 in
  let dir_block_count = read_i64 88 in
  let flag_sample_count = read_i64 96 in
  let psum_count = read_i64 104 in
  if node_count < 0 || symbol_count < 0 || content_count < 0 then corrupt path "negative count";
  if tag_width <> 1 && tag_width <> 2 then corrupt path "bad tag width";
  if structure_bit_len <> 2 * node_count then corrupt path "structure length";
  if flags_bit_len <> node_count then corrupt path "flag length";
  if dir_block_count <> dir_blocks_for structure_bit_len then corrupt path "directory size";
  if flag_sample_count <> flag_samples_for flags_bit_len then corrupt path "flag sample count";
  if psum_count < 0 || psum_count > node_count then corrupt path "summary count";
  let layout =
    layout_of_fields ~node_count ~tag_width ~structure_bit_len ~structure_byte_len ~flags_bit_len
      ~flags_byte_len ~symbol_count ~symbol_blob_len ~content_count ~content_blob_len
      ~dir_block_count ~flag_sample_count ~psum_count
  in
  let expected = layout.psum_off + (psum_row_bytes * psum_count) in
  if expected <> total_size then corrupt path "size mismatch";
  layout

(* Layout straight from the header fields, with no consistency checks:
   the fsck pass wants to address sections of a possibly-corrupt file and
   report every inconsistency itself rather than fail on the first. *)
let layout_of_header ~read_i64 =
  layout_of_fields ~node_count:(read_i64 16) ~tag_width:(read_i64 24)
    ~structure_bit_len:(read_i64 32) ~structure_byte_len:(read_i64 40)
    ~flags_bit_len:(read_i64 48) ~flags_byte_len:(read_i64 56) ~symbol_count:(read_i64 64)
    ~symbol_blob_len:(read_i64 72) ~content_count:(read_i64 80) ~content_blob_len:(read_i64 88)
    ~dir_block_count:(read_i64 96) ~flag_sample_count:(read_i64 104) ~psum_count:(read_i64 112)

let sign16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

(* Decode the serialized per-block excess directory through an arbitrary
   byte reader (string for [load], buffer pool for [Paged_store]). *)
let read_dir_blocks ~get_byte ~dir_off ~dir_block_count =
  let u16 off = get_byte off lor (get_byte (off + 1) lsl 8) in
  let field k = Array.init (max 1 dir_block_count) (fun b ->
      if b < dir_block_count then sign16 (u16 (dir_off + (b * 10) + (2 * k))) else 0)
  in
  {
    Excess_dir.delta = field 0;
    fmin = field 1;
    fmax = field 2;
    bmin = field 3;
    bmax = field 4;
  }

(* --- whole-file load (in-memory store) --------------------------------- *)

(* The O(doc) recompute-and-compare cross-checks (excess directory, path
   summary) used to run on every open, which multiplies painfully across a
   corpus of shards. Opens now trust the packed sections by default; the
   full cross-check lives in fsck and can be forced per-process with
   XQP_VERIFY_PLANS=1 or per-call with [~verify:true]. *)
let verify_default () =
  match Sys.getenv_opt "XQP_VERIFY_PLANS" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let load_bytes ?pager ?verify ~path contents_of_file =
  let verify = match verify with Some v -> v | None -> verify_default () in
  (fun () ->
      let total_size = String.length contents_of_file in
      if total_size < header_bytes then corrupt path "too small";
      if not (String.equal (String.sub contents_of_file 0 8) magic) then corrupt path "bad magic";
      let read_i64 off =
        let v = ref 0 in
        for shift = 0 to 7 do
          v := !v lor (Char.code contents_of_file.[off + shift] lsl (8 * shift))
        done;
        !v
      in
      let file_version = read_i64 8 in
      if file_version <> version then
        failwith
          (Printf.sprintf "%s: unsupported store version %d (expected %d)" path file_version
             version);
      let layout = read_layout_from (fun off -> read_i64 (off + 8)) ~path ~total_size in
      let section off len =
        if off < 0 || len < 0 || off + len > total_size then corrupt path "section bounds";
        String.sub contents_of_file off len
      in
      let structure =
        Bitvector.of_packed_bytes
          (Bytes.of_string (section layout.structure_off layout.structure_byte_len))
          layout.structure_bit_len
      in
      (* Cross-check the serialized directories against freshly computed
         ones when verifying: a corrupted directory would misnavigate a
         paged reader. fsck always runs this check. *)
      if verify then begin
        let stored =
          read_dir_blocks
            ~get_byte:(fun off -> Char.code contents_of_file.[off])
            ~dir_off:layout.dir_off ~dir_block_count:layout.dir_block_count
        in
        let fresh =
          Excess_dir.blocks
            (Excess_dir.create ~len:layout.structure_bit_len ~byte:(Bitvector.byte structure))
        in
        if
          not
            (stored.Excess_dir.delta = fresh.Excess_dir.delta
            && stored.Excess_dir.fmin = fresh.Excess_dir.fmin
            && stored.Excess_dir.fmax = fresh.Excess_dir.fmax
            && stored.Excess_dir.bmin = fresh.Excess_dir.bmin
            && stored.Excess_dir.bmax = fresh.Excess_dir.bmax)
        then corrupt path "excess directory mismatch"
      end;
      let tag_ids =
        Array.init layout.node_count (fun rank ->
            let off = layout.tags_off + (rank * layout.tag_width) in
            let lo = Char.code contents_of_file.[off] in
            if layout.tag_width = 1 then lo
            else lo lor (Char.code contents_of_file.[off + 1] lsl 8))
      in
      let content_flags =
        Bitvector.of_packed_bytes
          (Bytes.of_string (section layout.flags_off layout.flags_byte_len))
          layout.flags_bit_len
      in
      for s = 0 to layout.flag_sample_count - 1 do
        let boundary = min layout.flags_bit_len (s * Excess_dir.block_bits) in
        if read_i64 (layout.flag_samples_off + (8 * s)) <> Bitvector.rank1 content_flags boundary
        then corrupt path "flag rank sample mismatch"
      done;
      let strings ~offsets_off ~blob_off ~count =
        Array.init count (fun i ->
            let start = read_i64 (offsets_off + (8 * i)) in
            let stop = read_i64 (offsets_off + (8 * (i + 1))) in
            if stop < start then corrupt path "offset order";
            section (blob_off + start) (stop - start))
      in
      let symbols =
        strings ~offsets_off:layout.symbol_offsets_off ~blob_off:layout.symbol_blob_off
          ~count:layout.symbol_count
      in
      let contents =
        strings ~offsets_off:layout.content_offsets_off ~blob_off:layout.content_blob_off
          ~count:layout.content_count
      in
      let raw = { Succinct_store.structure; tag_ids; symbols; content_flags; contents } in
      (* When verifying, cross-check the serialized path summary against a
         recomputed one, like the excess directory: a stale or corrupted
         synopsis must not silently feed the planner wrong cardinalities. *)
      if verify then begin
        let stored_rows =
          Array.init layout.psum_count (fun i ->
              let base = layout.psum_off + (psum_row_bytes * i) in
              {
                Path_summary.r_parent = read_i64 base;
                r_label = read_i64 (base + 8);
                r_count = read_i64 (base + 16);
                r_flags = read_i64 (base + 24);
              })
        in
        let label_ids = Hashtbl.create (max 16 layout.symbol_count) in
        Array.iteri (fun i s -> Hashtbl.replace label_ids s i) symbols;
        let fresh_rows =
          match Path_summary.to_rows (summary_of_raw raw) ~label_id:(Hashtbl.find label_ids) with
          | rows -> rows
          | exception Failure _ | exception Not_found -> corrupt path "path summary rebuild"
        in
        if stored_rows <> fresh_rows then corrupt path "path summary mismatch"
      end;
      match Succinct_store.of_raw ?pager raw with
      | store -> store
      | exception Invalid_argument reason -> corrupt path reason)
    ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let total_size = in_channel_length ic in
      try really_input_string ic total_size with End_of_file -> corrupt path "truncated")

let load ?pager ?verify path = load_bytes ?pager ?verify ~path (read_file path)

(* Parse just the header, symbol table and path-summary rows of a store
   image — the per-shard synopsis a catalog needs, without materializing
   (or even fully validating) the store. O(symbols + summary). *)
let packed_summary ~path contents_of_file =
  let total_size = String.length contents_of_file in
  if total_size < header_bytes then corrupt path "too small";
  if not (String.equal (String.sub contents_of_file 0 8) magic) then corrupt path "bad magic";
  let read_i64 off =
    let v = ref 0 in
    for shift = 0 to 7 do
      v := !v lor (Char.code contents_of_file.[off + shift] lsl (8 * shift))
    done;
    !v
  in
  let file_version = read_i64 8 in
  if file_version <> version then
    failwith
      (Printf.sprintf "%s: unsupported store version %d (expected %d)" path file_version version);
  let layout = read_layout_from (fun off -> read_i64 (off + 8)) ~path ~total_size in
  let symbols =
    Array.init layout.symbol_count (fun i ->
        let start = read_i64 (layout.symbol_offsets_off + (8 * i)) in
        let stop = read_i64 (layout.symbol_offsets_off + (8 * (i + 1))) in
        if stop < start || layout.symbol_blob_off + stop > total_size then
          corrupt path "offset order";
        String.sub contents_of_file (layout.symbol_blob_off + start) (stop - start))
  in
  let rows =
    Array.init layout.psum_count (fun i ->
        let base = layout.psum_off + (psum_row_bytes * i) in
        {
          Path_summary.r_parent = read_i64 base;
          r_label = read_i64 (base + 8);
          r_count = read_i64 (base + 16);
          r_flags = read_i64 (base + 24);
        })
  in
  let label_of id =
    if id < 0 || id >= Array.length symbols then corrupt path "summary label id"
    else symbols.(id)
  in
  match Path_summary.of_rows rows ~label_of with
  | summary -> summary
  | exception Failure _ -> corrupt path "path summary table"

(* --- header access for the paged reader -------------------------------- *)

let read_layout pool path =
  if Buffer_pool.file_size pool < header_bytes then corrupt path "too small";
  if not (String.equal (Buffer_pool.read_string pool ~off:0 ~len:8) magic) then
    corrupt path "bad magic";
  let file_version = Buffer_pool.read_i64 pool 8 in
  if file_version <> version then
    failwith
      (Printf.sprintf "%s: unsupported store version %d (expected %d)" path file_version version);
  read_layout_from
    (fun off -> Buffer_pool.read_i64 pool (off + 8))
    ~path ~total_size:(Buffer_pool.file_size pool)
