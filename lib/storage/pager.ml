type stats = {
  page_size : int;
  logical_reads : int;
  logical_writes : int;
  physical_reads : int;
  physical_writes : int;
  hits : int;
}

(* Every pager also emits into the unified metrics registry, so the
   profiler can attribute simulated I/O to operator spans without
   knowing which pager instance a store carries. *)
module M = Xqp_obs.Metrics

let m_logical_reads = M.counter M.default "pager.logical_reads"
let m_logical_writes = M.counter M.default "pager.logical_writes"
let m_physical_reads = M.counter M.default "pager.physical_reads"
let m_physical_writes = M.counter M.default "pager.physical_writes"
let m_hits = M.counter M.default "pager.hits"

(* The LRU pool is a doubly-linked list threaded through a hashtable keyed by
   (region, page number). A generation counter orders recency cheaply: each
   touch stamps the entry; eviction scans for the minimum stamp only when the
   pool overflows (pool sizes are small, and benchmarks reset often). *)
type entry = { mutable stamp : int; mutable dirty : bool }

(* A pager instance is [Domain_local]: its pool and counters are plain
   mutable state owned by whichever domain opened it (the process-wide
   [pager.*] mirrors above are atomic). The owner stamp turns a
   cross-domain touch into a loud Dsan violation instead of silent
   counter corruption. *)
type t = {
  owner : Xqp_obs.Dsan.owner;
  page_size : int;
  pool_pages : int;
  pool : (int * int, entry) Hashtbl.t;
  mutable clock : int;
  mutable logical_reads : int;
  mutable logical_writes : int;
  mutable physical_reads : int;
  mutable physical_writes : int;
  mutable hits : int;
}

let region_structure = 0
let region_tags = 1
let region_content = 2

let create ?(page_size = 4096) ?(pool_pages = 256) () =
  {
    owner = Xqp_obs.Dsan.owner "Pager";
    page_size;
    pool_pages;
    pool = Hashtbl.create 512;
    clock = 0;
    logical_reads = 0;
    logical_writes = 0;
    physical_reads = 0;
    physical_writes = 0;
    hits = 0;
  }

let evict_if_full t =
  if Hashtbl.length t.pool >= t.pool_pages then begin
    let victim = ref None in
    Hashtbl.iter
      (fun key entry ->
        match !victim with
        | Some (_, oldest) when oldest.stamp <= entry.stamp -> ()
        | _ -> victim := Some (key, entry))
      t.pool;
    match !victim with
    | Some (key, entry) ->
      if entry.dirty then begin
        t.physical_writes <- t.physical_writes + 1;
        M.incr m_physical_writes
      end;
      Hashtbl.remove t.pool key
    | None -> ()
  end

let touch t ~region ~page ~write =
  Xqp_obs.Dsan.assert_owner t.owner;
  t.clock <- t.clock + 1;
  let key = (region, page) in
  (match Hashtbl.find_opt t.pool key with
  | Some entry ->
    t.hits <- t.hits + 1;
    M.incr m_hits;
    entry.stamp <- t.clock;
    if write then entry.dirty <- true
  | None ->
    t.physical_reads <- t.physical_reads + 1;
    M.incr m_physical_reads;
    evict_if_full t;
    Hashtbl.add t.pool key { stamp = t.clock; dirty = write });
  if write then begin
    t.logical_writes <- t.logical_writes + 1;
    M.incr m_logical_writes
  end
  else begin
    t.logical_reads <- t.logical_reads + 1;
    M.incr m_logical_reads
  end

let span t ~off ~len =
  let first = off / t.page_size in
  let last = if len <= 0 then first else (off + len - 1) / t.page_size in
  (first, last)

let read t ~region ~off ~len =
  let first, last = span t ~off ~len in
  for page = first to last do
    touch t ~region ~page ~write:false
  done

let write t ~region ~off ~len =
  let first, last = span t ~off ~len in
  for page = first to last do
    touch t ~region ~page ~write:true
  done

let flush t =
  let dirty = Hashtbl.fold (fun _ e acc -> if e.dirty then e :: acc else acc) t.pool [] in
  List.iter
    (fun e ->
      e.dirty <- false;
      t.physical_writes <- t.physical_writes + 1;
      M.incr m_physical_writes)
    dirty

let stats t =
  {
    page_size = t.page_size;
    logical_reads = t.logical_reads;
    logical_writes = t.logical_writes;
    physical_reads = t.physical_reads;
    physical_writes = t.physical_writes;
    hits = t.hits;
  }

let reset_stats t =
  t.logical_reads <- 0;
  t.logical_writes <- 0;
  t.physical_reads <- 0;
  t.physical_writes <- 0;
  t.hits <- 0

let reset t =
  Hashtbl.reset t.pool;
  t.clock <- 0;
  reset_stats t;
  (* an explicit reset is the legitimate hand-off point between domains *)
  Xqp_obs.Dsan.release_owner t.owner

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "page=%dB lr=%d lw=%d pr=%d pw=%d hits=%d" s.page_size s.logical_reads
    s.logical_writes s.physical_reads s.physical_writes s.hits
