(** Simulated page-grain storage accounting.

    The paper's physical optimization goal is reducing I/O (§4.1). Our
    stores live in memory, so a [Pager.t] models the disk: byte-range
    accesses are mapped to page numbers and run through an LRU buffer pool,
    counting logical accesses, buffer hits, simulated page reads and writes.
    Experiments report these counters next to wall-clock time. *)

type t

type stats = {
  page_size : int;
  logical_reads : int;   (** page touches for reading *)
  logical_writes : int;  (** page touches for writing *)
  physical_reads : int;  (** buffer-pool misses *)
  physical_writes : int; (** dirty evictions + flushes *)
  hits : int;            (** buffer-pool hits *)
}

val create : ?page_size:int -> ?pool_pages:int -> unit -> t
(** [create ()] uses 4096-byte pages and a 256-page pool. *)

val read : t -> region:int -> off:int -> len:int -> unit
(** Record a read of bytes [[off, off+len)] of logical region [region]
    (regions keep structure / tags / content pages distinct). Zero-length
    reads still touch one page. *)

val write : t -> region:int -> off:int -> len:int -> unit
(** Record a write; pages become dirty in the pool. *)

val flush : t -> unit
(** Write back every dirty page (counted as physical writes). *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the counters only; cached pages stay resident (and keep their
    recency stamps), so subsequent accesses are measured against a warm
    pool — the counterpart of {!Buffer_pool.reset_stats}. *)

val reset : t -> unit
(** Zero the counters {e and} empty the pool: the next accesses run
    cold, every touch is a physical read. Use {!reset_stats} to measure
    warm behaviour. *)

val pp_stats : Format.formatter -> stats -> unit

(** Region tags used by {!Succinct_store}. *)

val region_structure : int
val region_tags : int
val region_content : int
