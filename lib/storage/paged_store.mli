(** Disk-resident succinct store: the navigation primitives of
    {!Succinct_store} evaluated directly against {!Buffer_pool} pages of a
    saved [.xqdb] file.

    Only the derived directories (per-block excess, flag-rank samples,
    the symbol table) live in memory — about 1.5% of the data size; the
    parentheses, tags and content are faulted in page by page, so the
    pool's counters measure the real I/O behaviour of navigational
    evaluation (experiment E11). Since format v3 the directories are
    serialized in the file, so {!open_store} reads them directly instead
    of streaming the structure section; payload pages stay cold until
    navigation touches them. Call {!Buffer_pool.reset_stats} after open
    to measure queries alone. Navigation ([find_close], parent, rank ↔
    position) runs on the {!Excess_dir} RMM kernel in O(log n). *)

type t

type cursor = { pos : int; rank : int }
(** Like {!Succinct_store.cursor}: open-parenthesis position plus
    pre-order rank. *)

val open_store : ?page_size:int -> ?pool_pages:int -> string -> t
(** Open a file written by {!Store_io.save}.
    @raise Sys_error / Failure as {!Store_io.load}. *)

val close : t -> unit
val pool : t -> Buffer_pool.t
val node_count : t -> int

val root_cursor : t -> cursor
val cursor_of_rank : t -> int -> cursor
val first_child_cursor : t -> cursor -> cursor option
val next_sibling_cursor : t -> cursor -> cursor option

val parent_cursor : t -> cursor -> cursor option
(** Enclosing node; [None] at the root. O(log n) via the excess
    directory. *)

val subtree_size : t -> cursor -> int

val find_close : t -> int -> int
(** Matching close parenthesis of the open at a position (exposed for
    benchmarks and tests). *)

val tag_at : t -> cursor -> int
val tag_name : t -> int -> string
(** Symbol id → label (store conventions: ["@name"], ["#text"], …). *)

val find_symbol : t -> string -> int option
val symbol_count : t -> int

val content_at : t -> cursor -> string
(** Own content of the node ([""] for elements). *)

val text_content_at : t -> cursor -> string
(** Concatenated descendant-or-self text. *)

val to_tree : t -> Xqp_xml.Tree.t
(** Reconstruct the document (reads every page; for verification). *)

val directory_bytes : t -> int
(** Memory held by the in-RAM directories. *)
