type stats = { requests : int; page_faults : int; hits : int; evictions : int }

(* Mirror every counter into the unified metrics registry (operator
   spans read the [pool.*] counters to attribute real page I/O). *)
module M = Xqp_obs.Metrics

let m_requests = M.counter M.default "pool.requests"
let m_page_faults = M.counter M.default "pool.page_faults"
let m_hits = M.counter M.default "pool.hits"
let m_evictions = M.counter M.default "pool.evictions"

type frame = { data : Bytes.t; mutable stamp : int }

(* [Domain_local] like [Pager]: the in_channel position, the frame table
   and the counters all assume a single owning domain. *)
type t = {
  owner : Xqp_obs.Dsan.owner;
  ic : in_channel;
  size : int;
  page_size : int;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable requests : int;
  mutable page_faults : int;
  mutable hits : int;
  mutable evictions : int;
}

let open_file ?(page_size = 4096) ?(capacity = 64) path =
  if page_size <= 0 || capacity <= 0 then invalid_arg "Buffer_pool.open_file";
  let ic = open_in_bin path in
  {
    owner = Xqp_obs.Dsan.owner "Buffer_pool";
    ic;
    size = in_channel_length ic;
    page_size;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    clock = 0;
    requests = 0;
    page_faults = 0;
    hits = 0;
    evictions = 0;
  }

let close t = close_in_noerr t.ic
let file_size t = t.size

let evict_if_full t =
  if Hashtbl.length t.frames >= t.capacity then begin
    let victim = ref None in
    Hashtbl.iter
      (fun page frame ->
        match !victim with
        | Some (_, oldest) when oldest.stamp <= frame.stamp -> ()
        | _ -> victim := Some (page, frame))
      t.frames;
    match !victim with
    | Some (page, _) ->
      Hashtbl.remove t.frames page;
      t.evictions <- t.evictions + 1;
      M.incr m_evictions
    | None -> ()
  end

let page t number =
  Xqp_obs.Dsan.assert_owner t.owner;
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.frames number with
  | Some frame ->
    t.hits <- t.hits + 1;
    M.incr m_hits;
    frame.stamp <- t.clock;
    frame.data
  | None ->
    t.page_faults <- t.page_faults + 1;
    M.incr m_page_faults;
    evict_if_full t;
    let off = number * t.page_size in
    let len = min t.page_size (t.size - off) in
    if len <= 0 then invalid_arg "Buffer_pool.page: beyond end of file";
    let data = Bytes.create len in
    seek_in t.ic off;
    really_input t.ic data 0 len;
    Hashtbl.add t.frames number { data; stamp = t.clock };
    data

let get_byte t off =
  if off < 0 || off >= t.size then invalid_arg "Buffer_pool.get_byte";
  t.requests <- t.requests + 1;
  M.incr m_requests;
  let data = page t (off / t.page_size) in
  Char.code (Bytes.unsafe_get data (off mod t.page_size))

let read_string t ~off ~len =
  if off < 0 || len < 0 || off + len > t.size then invalid_arg "Buffer_pool.read_string";
  t.requests <- t.requests + 1;
  M.incr m_requests;
  let buffer = Buffer.create len in
  let remaining = ref len in
  let cursor = ref off in
  while !remaining > 0 do
    let data = page t (!cursor / t.page_size) in
    let in_page = !cursor mod t.page_size in
    let chunk = min !remaining (Bytes.length data - in_page) in
    Buffer.add_subbytes buffer data in_page chunk;
    cursor := !cursor + chunk;
    remaining := !remaining - chunk
  done;
  Buffer.contents buffer

let read_i64 t off =
  let v = ref 0 in
  for shift = 0 to 7 do
    v := !v lor (get_byte t (off + shift) lsl (8 * shift))
  done;
  !v

let stats t =
  { requests = t.requests; page_faults = t.page_faults; hits = t.hits; evictions = t.evictions }

let reset_stats t =
  t.requests <- 0;
  t.page_faults <- 0;
  t.hits <- 0;
  t.evictions <- 0

let drop_cache t =
  Hashtbl.reset t.frames;
  (* dropping every frame is the legitimate hand-off point between domains *)
  Xqp_obs.Dsan.release_owner t.owner

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "requests=%d faults=%d hits=%d evictions=%d" s.requests s.page_faults s.hits
    s.evictions
