(** Range-min-max excess directory over a balanced-parentheses bit string.

    The broadword navigation kernel shared by {!Balanced_parens} (bytes in
    memory) and {!Paged_store} (bytes faulted from a buffer pool): per-byte
    excess tables for 8-bit-at-a-time scans, a per-256-bit-block directory
    with exact forward and backward excess bounds, and a segment tree over
    blocks giving O(log n) [find_close] / [find_open] / [enclose].

    Bits are read through a byte closure, LSB-first within bytes; bit 1 is
    an open parenthesis (+1 excess), bit 0 a close (-1). [excess t j] is
    the excess of the prefix [0, j). *)

type t

type blocks = {
  delta : int array;  (** excess over each block *)
  fmin : int array;   (** min prefix excess within the block (prefixes 1..B) *)
  fmax : int array;
  bmin : int array;   (** min boundary excess within the block (boundaries 0..B-1) *)
  bmax : int array;
}
(** The serializable per-block directory. All values are relative to the
    block's starting excess and lie in [-block_bits, block_bits]. *)

val block_bits : int
(** Directory granularity in bits (256). *)

val block_bytes : int

(** {2 Per-byte excess tables}

    Indexed by byte value (LSB-first bit order), shared with callers that
    run their own byte-stepped scans over raw bytes (the in-block fast
    paths in {!Balanced_parens}). *)

val byte_excess : int array
(** Total excess (+1 per set bit, -1 per clear bit) of the byte. *)

val byte_fmin : int array
(** Minimum prefix excess over the byte's prefixes of length 1..8. *)

val byte_fmax : int array

val byte_bmin : int array
(** Minimum boundary excess over boundaries 0..7 (before each bit). *)

val byte_bmax : int array

val create : len:int -> byte:(int -> int) -> t
(** [create ~len ~byte] scans the [len]-bit string (one pass, byte-stepped)
    and builds the full directory. [byte i] must return payload byte [i]
    for [i < ceil(len/8)]; bits of the last byte beyond [len] are ignored. *)

val create_reusing : prefix:t -> prefix_blocks:int -> len:int -> byte:(int -> int) -> t
(** Incremental rebuild after a splice: block entries [0, prefix_blocks)
    are copied from [prefix] (whose underlying bits must be unchanged over
    that range); only later blocks are rescanned. *)

val of_blocks : len:int -> byte:(int -> int) -> blocks -> t
(** Wrap a deserialized directory without scanning the bit string.
    @raise Invalid_argument if [blocks] is too short for [len]. *)

val blocks : t -> blocks
val nblocks : t -> int
val length : t -> int

val total_excess : t -> int
(** Excess of the whole string (0 iff balanced and never negative). *)

val size_in_bytes : t -> int
(** Directory memory footprint (excludes the bit string itself). *)

val excess : t -> int -> int
(** [excess t j] for [0 <= j <= length t]: opens minus closes in [0, j).
    O(block_bits / 8). Callers holding an O(1) [rank1] should prefer
    [2 * rank1 j - j] and pass the result as [?excess_at] below. *)

val find_close : ?excess_at:int -> t -> int -> int
(** Position of the close parenthesis matching the open at [pos].
    [?excess_at] is [excess t pos] if already known. O(log n).
    @raise Invalid_argument if the string is unbalanced at [pos]. *)

val find_open : ?excess_at:int -> t -> int -> int
(** Position of the open parenthesis matching the close at [pos]. O(log n). *)

val enclose : ?excess_at:int -> t -> int -> int option
(** Position of the open parenthesis of the nearest enclosing pair of the
    node opening at [pos]; [None] at the root. O(log n) — this is the
    [parent] primitive. *)

val fwd_search : ?entry:int -> t -> int -> int -> int
(** [fwd_search t j0 target]: leftmost boundary [j >= j0] with
    [excess t j = target], given [excess t (j0-1) > target]. [?entry] is
    [excess t (j0-1)] if already known (skips a block walk).
    @raise Not_found if none exists. *)

val bwd_search : ?entry:int -> t -> int -> int -> int
(** [bwd_search t j0 target]: rightmost boundary [j < j0] with
    [excess t j = target]. [?entry] is [excess t j0] if already known.
    @raise Not_found if none exists. *)

val select_open : t -> int -> int
(** Position of the [k]-th (0-based) open parenthesis, i.e. the node with
    pre-order rank [k]. O(log n). @raise Not_found if out of range. *)

val check_balanced : t -> bool
(** Whole-string balance check straight off the directory, O(n/block_bits). *)
