(** Binary persistence for the succinct store.

    The on-disk layout mirrors the in-memory separation (§4.2): one
    length-prefixed section per sequence — structure bits, tag sequence,
    symbol table, has-content bits, content blob — so a future mmap-style
    reader could fault in sections independently. Integers are 64-bit
    little-endian; the file starts with a magic string and a format
    version.

    Since v3 the per-block excess directory of the structure bits and
    rank1 samples of the has-content bits are serialized too (trailing
    sections), so {!Paged_store} can open a file without streaming the
    structure. {!load} cross-checks them against recomputed directories
    and fails on mismatch. Word-level rank directories remain derived
    data, rebuilt at load time.

    Since v4 the {!Path_summary} of the document — every distinct
    root-to-node label path with its exact count — is serialized as a
    trailing section (4 × i64 per summary node), so the planner's
    cardinality synopsis rides with the data.

    Opens trust the packed directory and summary sections by default:
    the recompute-and-compare cross-checks are O(doc) per open, which
    multiplies across a corpus of shards. They run in fsck, and {!load}
    re-enables them with [~verify:true] or [XQP_VERIFY_PLANS=1]. *)

val magic : string
val version : int

val save : Succinct_store.t -> string -> unit
(** [save store path] writes the store. @raise Sys_error on I/O failure. *)

val to_bytes : Succinct_store.t -> string
(** The exact byte image {!save} writes — what catalog shard containers
    embed. *)

val load : ?pager:Pager.t -> ?verify:bool -> string -> Succinct_store.t
(** [load path] reads a store written by {!save}. [verify] (default: set
    iff [XQP_VERIFY_PLANS] is a non-empty value other than ["0"]) turns
    the O(doc) excess-directory and path-summary recompute-and-compare
    cross-checks back on.
    @raise Sys_error on I/O failure.
    @raise Failure on a bad magic, version or truncated file. *)

val load_bytes :
  ?pager:Pager.t -> ?verify:bool -> path:string -> string -> Succinct_store.t
(** {!load} from an in-memory image ([path] labels error messages) — how
    catalog shards address embedded per-document store images. *)

val read_file : string -> string
(** Whole-file read used by {!load} (and by catalog/fsck callers that
    slice the image themselves). @raise Sys_error / Failure. *)

val packed_summary : path:string -> string -> Path_summary.t
(** Decode just the path-summary section (plus the symbol table it
    references) of a store image, without materializing the store —
    O(symbols + summary), not O(doc). @raise Failure on malformed
    header/table. *)

(** {2 Section directory} — used by {!Paged_store} to address sections of
    the file without reading it wholesale. All offsets are absolute file
    positions. *)

type layout = {
  node_count : int;
  tag_width : int;
  structure_bit_len : int;
  structure_off : int;
  structure_byte_len : int;
  tags_off : int;
  flags_bit_len : int;
  flags_off : int;
  flags_byte_len : int;
  symbol_count : int;
  symbol_offsets_off : int;
  symbol_blob_off : int;
  content_count : int;
  content_offsets_off : int;
  content_blob_off : int;
  dir_block_count : int;   (** 256-bit structure blocks *)
  dir_off : int;           (** 5 × i16 per block: delta, fmin, fmax, bmin, bmax *)
  flag_sample_count : int;
  flag_samples_off : int;  (** i64 rank1 sample per 256-bit flag boundary *)
  psum_count : int;        (** path-summary nodes *)
  psum_off : int;          (** 4 × i64 per node: parent + 1, label sym, count, flags *)
}

val header_bytes : int
val psum_row_bytes : int

val summary_of_store : Succinct_store.t -> Path_summary.t
(** Recompute the path summary from the store's raw sections — one pass
    over the balanced-parentheses bits. This is what [save] serializes and
    what [load] checks the serialized section against. *)

val layout_of_header : read_i64:(int -> int) -> layout
(** Compute the section directory straight from the 13 header fields
    ([read_i64] takes an absolute file offset), with {e no} consistency
    checks — for readers like the fsck pass that report inconsistencies
    themselves instead of failing on the first. *)

val read_dir_blocks :
  get_byte:(int -> int) -> dir_off:int -> dir_block_count:int -> Excess_dir.blocks
(** Decode the serialized structure excess directory through an arbitrary
    byte reader (used with a {!Buffer_pool} by {!Paged_store}). *)

val read_layout : Buffer_pool.t -> string -> layout
(** Validate the header through the pool and return the directory.
    @raise Failure on a bad magic, version or inconsistent sizes. *)
