(** A real buffer pool: fixed-size pages faulted in from a read-only file
    on demand, cached under LRU replacement.

    This is the storage-manager half of the paper's physical layer: the
    {!Paged_store} runs the succinct scheme's navigation directly against
    these pages, so "pages read" is a measured quantity, not a simulated
    one (contrast {!Pager}, which only counts accesses of in-memory
    stores). *)

type t

type stats = {
  requests : int;     (** byte-range reads issued by callers *)
  page_faults : int;  (** pages read from the file *)
  hits : int;         (** pages served from the pool *)
  evictions : int;    (** pages dropped to make room *)
}

val open_file : ?page_size:int -> ?capacity:int -> string -> t
(** [open_file path] opens [path] read-only with 4096-byte pages and a
    64-page pool by default.
    @raise Sys_error if the file cannot be opened. *)

val close : t -> unit
val file_size : t -> int

val get_byte : t -> int -> int
(** Byte at an absolute file offset. @raise Invalid_argument out of
    bounds. *)

val read_string : t -> off:int -> len:int -> string
(** A byte range (may span pages). *)

val read_i64 : t -> int -> int
(** Little-endian 64-bit integer at an absolute offset. *)

val stats : t -> stats
val reset_stats : t -> unit
(** Zero the counters only; the cached pages stay resident (use
    {!drop_cache} for a cold start) — the same counters-only contract as
    {!Pager.reset_stats}. Counters are also mirrored into
    [Xqp_obs.Metrics.default] under [pool.*]; those are process-wide and
    not affected by this call. *)

val drop_cache : t -> unit
(** Evict every page (simulates a cold buffer pool). *)

val pp_stats : Format.formatter -> stats -> unit
