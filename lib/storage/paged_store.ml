type cursor = { pos : int; rank : int }

type t = {
  pool : Buffer_pool.t;
  layout : Store_io.layout;
  symbols : string array;
  by_name : (string, int) Hashtbl.t;
  dir : Excess_dir.t; (* RMM excess directory; bytes faulted from the pool *)
  flag_rank : int array; (* rank1 of the flag bits before each 256-bit block *)
}

let byte_pop =
  Array.init 256 (fun b ->
      let rec count b acc = if b = 0 then acc else count (b lsr 1) (acc + (b land 1)) in
      count b 0)

(* --- raw section access ---------------------------------------------- *)

let structure_byte t i = Buffer_pool.get_byte t.pool (t.layout.Store_io.structure_off + i)

let structure_bit t i =
  structure_byte t (i lsr 3) land (1 lsl (i land 7)) <> 0

let flag_byte t i = Buffer_pool.get_byte t.pool (t.layout.Store_io.flags_off + i)
let flag_bit t i = flag_byte t (i lsr 3) land (1 lsl (i land 7)) <> 0

(* --- open -------------------------------------------------------------- *)

let open_store ?page_size ?pool_pages path =
  let pool = Buffer_pool.open_file ?page_size ?capacity:pool_pages path in
  let layout = Store_io.read_layout pool path in
  let symbols =
    Array.init layout.Store_io.symbol_count (fun i ->
        let base = layout.Store_io.symbol_offsets_off in
        let start = Buffer_pool.read_i64 pool (base + (8 * i)) in
        let stop = Buffer_pool.read_i64 pool (base + (8 * (i + 1))) in
        Buffer_pool.read_string pool
          ~off:(layout.Store_io.symbol_blob_off + start)
          ~len:(stop - start))
  in
  let by_name = Hashtbl.create (Array.length symbols) in
  Array.iteri (fun i name -> Hashtbl.replace by_name name i) symbols;
  (* The per-block excess directory and the flag-rank samples are stored
     in the file (format v3): read them instead of streaming the
     structure and flag sections. Only the directory pages are touched at
     open; the payload sections stay cold until navigation faults them. *)
  let blocks =
    Store_io.read_dir_blocks
      ~get_byte:(fun off -> Buffer_pool.get_byte pool off)
      ~dir_off:layout.Store_io.dir_off ~dir_block_count:layout.Store_io.dir_block_count
  in
  let dir =
    Excess_dir.of_blocks ~len:layout.Store_io.structure_bit_len
      ~byte:(fun i -> Buffer_pool.get_byte pool (layout.Store_io.structure_off + i))
      blocks
  in
  let flag_rank =
    Array.init layout.Store_io.flag_sample_count (fun s ->
        Buffer_pool.read_i64 pool (layout.Store_io.flag_samples_off + (8 * s)))
  in
  { pool; layout; symbols; by_name; dir; flag_rank }

let close t = Buffer_pool.close t.pool
let pool t = t.pool
let node_count t = t.layout.Store_io.node_count

(* --- parentheses navigation ------------------------------------------- *)

let bit_len t = t.layout.Store_io.structure_bit_len

let find_close t pos =
  match Excess_dir.find_close t.dir pos with
  | j -> j
  | exception Invalid_argument _ -> invalid_arg "Paged_store.find_close: unbalanced"

let root_cursor (_ : t) = { pos = 0; rank = 0 }

let first_child_cursor t cursor =
  let next = cursor.pos + 1 in
  if next < bit_len t && structure_bit t next then Some { pos = next; rank = cursor.rank + 1 }
  else None

let next_sibling_cursor t cursor =
  let close = find_close t cursor.pos in
  let after = close + 1 in
  if after < bit_len t && structure_bit t after then
    Some { pos = after; rank = cursor.rank + ((close - cursor.pos + 1) / 2) }
  else None

let parent_cursor t cursor =
  match Excess_dir.enclose t.dir cursor.pos with
  | None -> None
  | Some pos ->
    (* preorder rank of an open paren = (position + excess) / 2 *)
    Some { pos; rank = (pos + Excess_dir.excess t.dir pos) / 2 }

let subtree_size t cursor = (find_close t cursor.pos - cursor.pos + 1) / 2

let cursor_of_rank t rank =
  if rank < 0 || rank >= node_count t then invalid_arg "Paged_store.cursor_of_rank";
  match Excess_dir.select_open t.dir rank with
  | pos -> { pos; rank }
  | exception Not_found -> invalid_arg "Paged_store.cursor_of_rank: out of range"

(* --- tags and content --------------------------------------------------- *)

let tag_at t cursor =
  let w = t.layout.Store_io.tag_width in
  let off = t.layout.Store_io.tags_off + (cursor.rank * w) in
  let lo = Buffer_pool.get_byte t.pool off in
  if w = 1 then lo else lo lor (Buffer_pool.get_byte t.pool (off + 1) lsl 8)

let tag_name t sym = t.symbols.(sym)
let find_symbol t name = Hashtbl.find_opt t.by_name name
let symbol_count t = Array.length t.symbols

(* rank1 of the flag bits before [rank]: nearest serialized sample plus a
   byte-stepped scan of at most one 256-bit block. *)
let flag_rank1 t rank =
  let b = rank / Excess_dir.block_bits in
  let acc = ref t.flag_rank.(b) in
  let i = ref (b * Excess_dir.block_bits) in
  while !i < rank do
    if !i land 7 = 0 && !i + 8 <= rank then begin
      acc := !acc + byte_pop.(flag_byte t (!i lsr 3));
      i := !i + 8
    end
    else begin
      if flag_bit t !i then incr acc;
      incr i
    end
  done;
  !acc

let content_at t cursor =
  if not (flag_bit t cursor.rank) then ""
  else begin
    let id = flag_rank1 t cursor.rank in
    let base = t.layout.Store_io.content_offsets_off in
    let start = Buffer_pool.read_i64 t.pool (base + (8 * id)) in
    let stop = Buffer_pool.read_i64 t.pool (base + (8 * (id + 1))) in
    Buffer_pool.read_string t.pool
      ~off:(t.layout.Store_io.content_blob_off + start)
      ~len:(stop - start)
  end

let label_kind label =
  if String.length label = 0 then `Element
  else
    match label.[0] with
    | '@' -> `Attribute
    | '?' -> `Pi
    | '#' -> if String.equal label "#text" then `Text else `Comment
    | _ -> `Element

let text_content_at t cursor =
  let label = t.symbols.(tag_at t cursor) in
  match label_kind label with
  | `Text | `Attribute -> content_at t cursor
  | `Comment | `Pi -> ""
  | `Element ->
    (* walk the subtree via cursors collecting text nodes *)
    let buffer = Buffer.create 32 in
    let rec walk c =
      (match label_kind t.symbols.(tag_at t c) with
      | `Text -> Buffer.add_string buffer (content_at t c)
      | `Attribute | `Comment | `Pi | `Element -> ());
      let rec kids child =
        match child with
        | None -> ()
        | Some k ->
          walk k;
          kids (next_sibling_cursor t k)
      in
      kids (first_child_cursor t c)
    in
    walk cursor;
    Buffer.contents buffer

let to_tree t =
  let rec build c =
    let label = t.symbols.(tag_at t c) in
    match label_kind label with
    | `Text -> Xqp_xml.Tree.Text (content_at t c)
    | `Comment -> Xqp_xml.Tree.Comment (content_at t c)
    | `Pi -> Xqp_xml.Tree.Pi (String.sub label 1 (String.length label - 1), content_at t c)
    | `Attribute -> invalid_arg "Paged_store.to_tree: attribute outside element"
    | `Element ->
      let rec collect child attrs kids =
        match child with
        | None -> (List.rev attrs, List.rev kids)
        | Some c' -> (
          let label' = t.symbols.(tag_at t c') in
          match label_kind label' with
          | `Attribute ->
            collect (next_sibling_cursor t c')
              ((String.sub label' 1 (String.length label' - 1), content_at t c') :: attrs)
              kids
          | `Element | `Text | `Comment | `Pi ->
            collect (next_sibling_cursor t c') attrs (build c' :: kids))
      in
      let attrs, kids = collect (first_child_cursor t c) [] [] in
      Xqp_xml.Tree.Element { name = label; attrs; children = kids }
  in
  build (root_cursor t)

let directory_bytes t =
  Excess_dir.size_in_bytes t.dir
  + (Array.length t.flag_rank * 8)
  + Array.fold_left (fun acc s -> acc + String.length s + 24) 0 t.symbols
