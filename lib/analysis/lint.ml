module Rewrite = Xqp_algebra.Rewrite
module D = Diagnostic

let check_plan ?context ?schema plan = Plan_check.check ?context ?schema plan

let verified_optimize ?context ?schema plan =
  let tag rule ds = List.map (D.with_path rule) ds in
  let d0 = tag "parsed plan" (check_plan ?context ?schema plan) in
  let simplified = Rewrite.simplify plan in
  let d1 = tag "after R0 (simplify)" (check_plan ?context ?schema simplified) in
  let fused = Rewrite.fuse simplified in
  let d2 = tag "after R1/R2 (fuse)" (check_plan ?context ?schema fused) in
  (fused, d0 @ d1 @ d2)

let acceptable ~strict ds =
  match D.max_severity ds with
  | None | Some D.Info -> true
  | Some D.Warning -> not strict
  | Some D.Error -> false
