module Rewrite = Xqp_algebra.Rewrite
module D = Diagnostic

let check_plan ?context ?schema plan = Plan_check.check ?context ?schema plan

let verified_optimize ?context ?schema plan =
  let tag rule ds = List.map (D.with_path rule) ds in
  let d0 = tag "parsed plan" (check_plan ?context ?schema plan) in
  let simplified = Rewrite.simplify plan in
  let d1 = tag "after R0 (simplify)" (check_plan ?context ?schema simplified) in
  let fused = Rewrite.fuse simplified in
  let d2 = tag "after R1/R2 (fuse)" (check_plan ?context ?schema fused) in
  (fused, d0 @ d1 @ d2)

type physical_tau = {
  tau_pattern : Xqp_algebra.Pattern_graph.t;
  tau_engine : string;
  tau_supported : bool;
  tau_estimate : float;
}

(* The compile-time gate over a physical plan. The physical IR lives in
   xqp_physical (which depends on this library), so the caller projects
   it: the logical erasure for the sort checker plus one summary record
   per τ binding. *)
let check_physical ?context ?schema ~logical taus =
  let base = check_plan ?context ?schema logical in
  let tau_diags =
    List.concat
      (List.mapi
         (fun i pt ->
           let path =
             [ Format.asprintf "tau %d (%a)" i Xqp_algebra.Pattern_graph.pp pt.tau_pattern ]
           in
           let auto =
             if String.equal pt.tau_engine "auto" then
               [
                 D.error ~path ~code:"physical/auto-engine"
                   "unresolved Auto engine in a compiled plan";
               ]
             else []
           in
           let unsupported =
             if pt.tau_supported then []
             else
               [
                 D.errorf ~path ~code:"physical/unsupported-engine"
                   "bound engine %S cannot evaluate this pattern" pt.tau_engine;
               ]
           in
           let estimate =
             if Float.is_finite pt.tau_estimate && pt.tau_estimate >= 0.0 then []
             else
               [
                 D.warningf ~path ~code:"physical/estimate"
                   "cardinality estimate %g is not a finite non-negative number" pt.tau_estimate;
               ]
           in
           auto @ unsupported @ estimate)
         taus)
  in
  base @ tau_diags

let acceptable ~strict ds =
  match D.max_severity ds with
  | None | Some D.Info -> true
  | Some D.Warning -> not strict
  | Some D.Error -> false
