(* Static domain-safety pass: find every piece of toplevel mutable state
   under a source tree and hold it against the declared annotation table.

   The scan is purely syntactic (compiler-libs Parsetree, no typing):
   conservative for the shapes that matter — [ref]/[Hashtbl.create]/
   record literals with [mutable] fields/[lazy] at structure level — plus
   two heuristics that catch constructed state: in-file constructor
   functions whose body syntactically builds mutable state, and calls
   whose final name component is [create]/[make]/[init] (so
   [let cache = Plan_cache.create ()] is a site even though the mutable
   record lives in another compilation unit). False positives are cheap:
   an incorrectly flagged immutable value gets a [Safe_immutable] row in
   the table, which doubles as documentation. *)

module D = Diagnostic

type annotation =
  | Safe_immutable
  | Guarded_by_mutex of string
  | Atomic
  | Domain_local
  | Unsafe

let annotation_name = function
  | Safe_immutable -> "Safe_immutable"
  | Guarded_by_mutex m -> Printf.sprintf "Guarded_by_mutex(%s)" m
  | Atomic -> "Atomic"
  | Domain_local -> "Domain_local"
  | Unsafe -> "Unsafe"

type kind =
  | Global_ref
  | Mutable_table
  | Mutable_array
  | Mutable_record
  | Toplevel_lazy
  | Atomic_value

let kind_name = function
  | Global_ref -> "global ref"
  | Mutable_table -> "mutable table"
  | Mutable_array -> "mutable array"
  | Mutable_record -> "mutable record"
  | Toplevel_lazy -> "toplevel lazy"
  | Atomic_value -> "atomic"

type site = { file : string; id : string; kind : kind; line : int }

(* --- Longident helpers ------------------------------------------------- *)

let rec flatten (li : Longident.t) =
  match li with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten p @ [ s ]
  | Longident.Lapply (_, p) -> flatten p

(* --- expression classification ----------------------------------------- *)

let table_modules = [ "Hashtbl"; "Queue"; "Stack"; "Buffer"; "Weak"; "Ephemeron" ]
let array_modules = [ "Array"; "Bytes"; "Float_array"; "Bigarray" ]

let array_ctors =
  [ "make"; "create"; "init"; "make_matrix"; "make_float"; "of_list"; "copy"; "sub"; "append" ]

(* Modules whose constructors build domain-safe synchronization values —
   never sites themselves. *)
let sync_modules = [ "Mutex"; "Condition"; "Semaphore"; "DLS" ]

let generic_ctor_names = [ "create"; "make"; "init" ]

let classify_apply ~ctors path =
  match List.rev path with
  | [] -> None
  | name :: rev_rest -> (
    let parent = match rev_rest with m :: _ -> Some m | [] -> None in
    match (parent, name) with
    | _, "ref" -> Some Global_ref
    | Some m, "create" when List.mem m table_modules -> Some Mutable_table
    | Some "Atomic", "make" -> Some Atomic_value
    | Some m, _ when List.mem m sync_modules -> None
    | Some m, c when List.mem m array_modules && List.mem c array_ctors -> Some Mutable_array
    | None, f when Hashtbl.mem ctors f -> Some (Hashtbl.find ctors f)
    | _, c when List.mem c generic_ctor_names -> Some Mutable_record
    | _ -> None)

let rec classify ~mutable_fields ~ctors (expr : Parsetree.expression) =
  let recurse e = classify ~mutable_fields ~ctors e in
  match expr.Parsetree.pexp_desc with
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_coerce (e, _, _) -> recurse e
  | Parsetree.Pexp_open (_, e) | Parsetree.Pexp_sequence (_, e) -> recurse e
  | Parsetree.Pexp_let (_, _, e) -> recurse e
  | Parsetree.Pexp_lazy _ -> Some Toplevel_lazy
  | Parsetree.Pexp_array _ -> Some Mutable_array
  | Parsetree.Pexp_apply (f, _) -> (
    match f.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } -> classify_apply ~ctors (flatten txt)
    | _ -> None)
  | Parsetree.Pexp_record (fields, _) ->
    if
      List.exists
        (fun ({ Asttypes.txt; _ }, _) ->
          match List.rev (flatten txt) with
          | label :: _ -> List.mem label mutable_fields
          | [] -> false)
        fields
    then Some Mutable_record
    else None
  | Parsetree.Pexp_construct (_, Some arg) -> recurse arg
  | Parsetree.Pexp_tuple es -> List.find_map recurse es
  | _ -> None

(* Peel parameters off a function body ([let f a b = body]); [None] when
   the expression is not a function. *)
let rec function_body (expr : Parsetree.expression) =
  match expr.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, body) -> Some (Option.value ~default:body (function_body body))
  | Parsetree.Pexp_newtype (_, body) -> Some (Option.value ~default:body (function_body body))
  | Parsetree.Pexp_constraint (e, _) -> function_body e
  | _ -> None

(* --- structure walk ----------------------------------------------------- *)

let rec binding_name (pat : Parsetree.pattern) =
  match pat.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> Some txt
  | Parsetree.Ppat_constraint (p, _) -> binding_name p
  | _ -> None

(* First pass: every [mutable] record-field name declared anywhere in the
   file (submodules included) — a record literal mentioning one of these
   is mutable no matter where the type lives. *)
let collect_mutable_fields structure =
  let fields = ref [] in
  let rec walk_module_expr (me : Parsetree.module_expr) =
    match me.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure items -> List.iter walk_item items
    | Parsetree.Pmod_constraint (me, _) -> walk_module_expr me
    | Parsetree.Pmod_functor (_, me) -> walk_module_expr me
    | _ -> ()
  and walk_item (item : Parsetree.structure_item) =
    match item.Parsetree.pstr_desc with
    | Parsetree.Pstr_type (_, decls) ->
      List.iter
        (fun (d : Parsetree.type_declaration) ->
          match d.Parsetree.ptype_kind with
          | Parsetree.Ptype_record labels ->
            List.iter
              (fun (l : Parsetree.label_declaration) ->
                if l.Parsetree.pld_mutable = Asttypes.Mutable then
                  fields := l.Parsetree.pld_name.Asttypes.txt :: !fields)
              labels
          | _ -> ())
        decls
    | Parsetree.Pstr_module mb -> walk_module_expr mb.Parsetree.pmb_expr
    | Parsetree.Pstr_recmodule mbs ->
      List.iter (fun (mb : Parsetree.module_binding) -> walk_module_expr mb.Parsetree.pmb_expr) mbs
    | Parsetree.Pstr_include incl -> walk_module_expr incl.Parsetree.pincl_mod
    | _ -> ()
  in
  List.iter walk_item structure;
  !fields

let scan_structure ~file structure =
  let mutable_fields = collect_mutable_fields structure in
  let sites = ref [] in
  let module_name =
    String.capitalize_ascii (Filename.remove_extension (Filename.basename file))
  in
  (* [ctors] maps in-file function names to the kind of mutable state
     their body builds, in declaration order, so [let default = create ()]
     inherits [create]'s kind. *)
  let ctors = Hashtbl.create 16 in
  let rec walk_items path items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.Parsetree.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match binding_name vb.Parsetree.pvb_pat with
              | None -> ()
              | Some name -> (
                match function_body vb.Parsetree.pvb_expr with
                | Some body -> (
                  match classify ~mutable_fields ~ctors body with
                  | Some kind -> Hashtbl.replace ctors name kind
                  | None -> ())
                | None -> (
                  match classify ~mutable_fields ~ctors vb.Parsetree.pvb_expr with
                  | Some kind ->
                    let id = String.concat "." (path @ [ name ]) in
                    let line =
                      vb.Parsetree.pvb_loc.Location.loc_start.Lexing.pos_lnum
                    in
                    sites := { file; id; kind; line } :: !sites
                  | None -> ())))
            vbs
        | Parsetree.Pstr_module mb ->
          let sub =
            match mb.Parsetree.pmb_name.Asttypes.txt with Some n -> [ n ] | None -> []
          in
          walk_module_expr (path @ sub) mb.Parsetree.pmb_expr
        | Parsetree.Pstr_recmodule mbs ->
          List.iter
            (fun (mb : Parsetree.module_binding) ->
              let sub =
                match mb.Parsetree.pmb_name.Asttypes.txt with Some n -> [ n ] | None -> []
              in
              walk_module_expr (path @ sub) mb.Parsetree.pmb_expr)
            mbs
        | Parsetree.Pstr_include incl -> walk_module_expr path incl.Parsetree.pincl_mod
        | _ -> ())
      items
  and walk_module_expr path (me : Parsetree.module_expr) =
    match me.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure items -> walk_items path items
    | Parsetree.Pmod_constraint (me, _) -> walk_module_expr path me
    (* state at the toplevel of a functor body is per-application, but
       toplevel applications make it global — keep flagging it *)
    | Parsetree.Pmod_functor (_, me) -> walk_module_expr path me
    | _ -> ()
  in
  walk_items [ module_name ] structure;
  List.rev !sites

let scan_file file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error m -> ([], [ D.errorf ~path:[ file ] ~code:"io/unreadable" "%s" m ])
  | source -> (
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf file;
    match Parse.implementation lexbuf with
    | structure -> (scan_structure ~file structure, [])
    | exception e ->
      ( [],
        [
          D.errorf ~path:[ file ] ~code:"domain/parse-error" "failed to parse: %s"
            (Printexc.to_string e);
        ] ))

let rec scan_path path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun (sites, diags) entry ->
        if String.length entry > 0 && (entry.[0] = '.' || String.equal entry "_build") then
          (sites, diags)
        else
          let child = Filename.concat path entry in
          if Sys.is_directory child || Filename.check_suffix child ".ml" then begin
            let s, d = scan_path child in
            (sites @ s, diags @ d)
          end
          else (sites, diags))
      ([], []) entries
  end
  else scan_file path

(* --- the declared annotation table -------------------------------------- *)

(* One row per known toplevel mutable site under lib/. The analyzer fails
   CI when a site is missing here, so adding global mutable state forces
   writing down its sharing discipline (DESIGN.md §11). *)
let annotations =
  [
    (* lib/obs *)
    ( "Dsan.on",
      Atomic,
      "sanitizer on/off flag; read per check, toggled by tests" );
    ( "Metrics.default",
      Guarded_by_mutex "Metrics.t.guard",
      "registry table guarded; counters/gauges are Atomic.t, histograms carry their own mutex" );
    ( "Trace.default",
      Domain_local,
      "tracing is a single-domain debugging facility; spans/ring are owned by the tracing \
       domain and off by default" );
    ( "Trace.null_span",
      Safe_immutable,
      "sentinel returned while tracing is off; s_real = false so add_attrs never writes it" );
    ( "Flight_recorder.default",
      Guarded_by_mutex "per-shard s_guard + slow-ring r_guard",
      "mutex-sharded fingerprint store; every record/stats locks the key's shard, the slow \
       ring has its own guard, on/refused are Atomic.t" );
    (* lib/physical *)
    ( "Executor.next_id",
      Atomic,
      "executor identity counter; fetch_and_add per create" );
    ( "Executor.verify_plans",
      Atomic,
      "debug gate read per run_physical, toggled by tests" );
    ( "Executor.shared_plan_cache",
      Guarded_by_mutex "Plan_cache per-shard guards",
      "mutex-sharded LRU; every find/add locks the key's shard" );
    (* lib/storage: per-byte lookup tables, filled by Array.init at module
       initialization and only ever indexed afterwards *)
    ("Bitvector.byte_pop", Safe_immutable, "256-entry popcount table, read-only after init");
    ("Excess_dir.byte_excess", Safe_immutable, "per-byte excess table, read-only after init");
    ("Excess_dir.byte_fmin", Safe_immutable, "per-byte forward-min table, read-only after init");
    ("Excess_dir.byte_fmax", Safe_immutable, "per-byte forward-max table, read-only after init");
    ("Excess_dir.byte_bmin", Safe_immutable, "per-byte backward-min table, read-only after init");
    ("Excess_dir.byte_bmax", Safe_immutable, "per-byte backward-max table, read-only after init");
    ("Paged_store.byte_pop", Safe_immutable, "256-entry popcount table, read-only after init");
    (* lib/workload: word-pool array literals for the synthetic document
       generators; written never, only Array.length/get *)
    ("Gen_auction.words", Safe_immutable, "generator word pool, read-only");
    ("Gen_auction.cities", Safe_immutable, "generator word pool, read-only");
    ("Gen_auction.countries", Safe_immutable, "generator word pool, read-only");
    ("Gen_auction.continents", Safe_immutable, "generator word pool, read-only");
    ("Gen_auction.categories_pool", Safe_immutable, "generator word pool, read-only");
    ("Gen_bib.title_words", Safe_immutable, "generator word pool, read-only");
    ("Gen_bib.surnames", Safe_immutable, "generator word pool, read-only");
    ("Gen_bib.publishers", Safe_immutable, "generator word pool, read-only");
    ("Gen_dblp.first_names", Safe_immutable, "generator word pool, read-only");
    ("Gen_dblp.last_names", Safe_immutable, "generator word pool, read-only");
    ("Gen_dblp.venues", Safe_immutable, "generator word pool, read-only");
    ("Gen_dblp.title_words", Safe_immutable, "generator word pool, read-only");
  ]

(* --- checking ------------------------------------------------------------ *)

let code_of_kind = function
  | Global_ref -> "domain/global-ref"
  | Mutable_table -> "domain/unguarded-table"
  | Mutable_array -> "domain/mutable-array"
  | Mutable_record -> "domain/mutable-state"
  | Toplevel_lazy -> "domain/toplevel-lazy"
  | Atomic_value -> "domain/missing-annotation"

let check ?(table = annotations) ?(stale = true) sites =
  let used = Hashtbl.create 16 in
  let site_diags =
    List.concat_map
      (fun s ->
        let where = [ s.file; Printf.sprintf "%s (line %d)" s.id s.line ] in
        match List.find_opt (fun (id, _, _) -> String.equal id s.id) table with
        | None ->
          [
            D.errorf ~path:where ~code:(code_of_kind s.kind)
              "unannotated toplevel %s: declare it in Domain_check.annotations \
               (Safe_immutable / Guarded_by_mutex / Atomic / Domain_local) or confine it"
              (kind_name s.kind);
          ]
        | Some (id, ann, why) -> (
          Hashtbl.replace used id ();
          match ann with
          | Unsafe ->
            [
              D.errorf ~path:where ~code:"domain/unsafe"
                "site is declared Unsafe (%s): fix it before domains can share it" why;
            ]
          | Atomic when s.kind <> Atomic_value ->
            [
              D.warningf ~path:where ~code:"domain/annotation-mismatch"
                "annotated Atomic but the site is a %s, not an Atomic.t" (kind_name s.kind);
            ]
          | Safe_immutable when s.kind = Global_ref || s.kind = Atomic_value ->
            [
              D.warningf ~path:where ~code:"domain/annotation-mismatch"
                "annotated Safe_immutable but a %s exists to be written" (kind_name s.kind);
            ]
          | Safe_immutable | Guarded_by_mutex _ | Atomic | Domain_local -> []))
      sites
  in
  let stale_diags =
    if not stale then []
    else
      List.filter_map
        (fun (id, ann, _) ->
          if Hashtbl.mem used id then None
          else
            Some
              (D.warningf
                 ~path:[ id ]
                 ~code:"domain/stale-annotation"
                 "annotation %s matches no discovered site: the code moved or the row is dead"
                 (annotation_name ann)))
        table
  in
  site_diags @ stale_diags

let audit ?table ?stale paths =
  let sites, scan_diags =
    List.fold_left
      (fun (sites, diags) p ->
        let s, d = scan_path p in
        (sites @ s, diags @ d))
      ([], []) paths
  in
  scan_diags @ check ?table ?stale sites
