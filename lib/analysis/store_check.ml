module Io = Xqp_storage.Store_io
module Bitvector = Xqp_storage.Bitvector
module Excess_dir = Xqp_storage.Excess_dir
module Btree = Xqp_storage.Btree
module Ps = Xqp_storage.Path_summary
module D = Diagnostic

let read_i64_at s off =
  let v = ref 0 in
  for shift = 0 to 7 do
    v := !v lor (Char.code s.[off + shift] lsl (8 * shift))
  done;
  !v

let check_bytes s =
  let diags = ref [] in
  let report d = diags := d :: !diags in
  let finish () = List.rev !diags in
  let len = String.length s in
  if len < Io.header_bytes then begin
    report
      (D.errorf ~path:[ "header" ] ~code:"layout/truncated"
         "file is %d bytes, smaller than the %d-byte header" len Io.header_bytes);
    finish ()
  end
  else if not (String.equal (String.sub s 0 8) Io.magic) then begin
    report (D.error ~path:[ "header" ] ~code:"layout/magic" "bad magic string");
    finish ()
  end
  else begin
    let version = read_i64_at s 8 in
    if version <> Io.version then begin
      report
        (D.errorf ~path:[ "header" ] ~code:"layout/version" "store version %d (expected %d)" version
           Io.version);
      finish ()
    end
    else begin
      let l = Io.layout_of_header ~read_i64:(read_i64_at s) in
      let header_ok = ref true in
      let header_err fmt = Format.kasprintf (fun m -> header_ok := false; report (D.error ~path:[ "header" ] ~code:"layout/header" m)) fmt in
      if l.Io.node_count < 0 || l.Io.symbol_count < 0 || l.Io.content_count < 0 then
        header_err "negative count field";
      if l.Io.tag_width <> 1 && l.Io.tag_width <> 2 then header_err "tag width %d (expected 1 or 2)" l.Io.tag_width;
      if !header_ok then begin
        if l.Io.structure_bit_len <> 2 * l.Io.node_count then
          header_err "structure is %d bits for %d nodes (expected %d)" l.Io.structure_bit_len
            l.Io.node_count (2 * l.Io.node_count);
        if l.Io.flags_bit_len <> l.Io.node_count then
          header_err "has-content flags are %d bits for %d nodes" l.Io.flags_bit_len l.Io.node_count;
        if l.Io.structure_byte_len <> (l.Io.structure_bit_len + 7) / 8 then
          header_err "structure byte length %d does not pack %d bits" l.Io.structure_byte_len
            l.Io.structure_bit_len;
        if l.Io.flags_byte_len <> (l.Io.flags_bit_len + 7) / 8 then
          header_err "flag byte length %d does not pack %d bits" l.Io.flags_byte_len l.Io.flags_bit_len;
        let want_blocks = (l.Io.structure_bit_len + Excess_dir.block_bits - 1) / Excess_dir.block_bits in
        if l.Io.dir_block_count <> want_blocks then
          header_err "excess directory has %d blocks (expected %d)" l.Io.dir_block_count want_blocks;
        let want_samples = ((l.Io.flags_bit_len + Excess_dir.block_bits - 1) / Excess_dir.block_bits) + 1 in
        if l.Io.flag_sample_count <> want_samples then
          header_err "flag rank directory has %d samples (expected %d)" l.Io.flag_sample_count
            want_samples;
        if l.Io.psum_count < 0 || l.Io.psum_count > l.Io.node_count then
          header_err "path summary has %d nodes for a %d-node document" l.Io.psum_count
            l.Io.node_count
      end;
      if not !header_ok then finish ()
      else begin
        let expected_size = l.Io.psum_off + (Io.psum_row_bytes * l.Io.psum_count) in
        if expected_size <> len then
          report
            (D.errorf ~path:[ "layout" ] ~code:"layout/size"
               "sections sum to %d bytes but the file has %d (truncated or padded)" expected_size len);
        let have off sec_len = off >= 0 && sec_len >= 0 && off + sec_len <= len in
        (* --- structure: balanced-parentheses discipline ---------------- *)
        let structure =
          if not (have l.Io.structure_off l.Io.structure_byte_len) then begin
            report
              (D.error ~path:[ "structure" ] ~code:"layout/size"
                 "structure section lies outside the file");
            None
          end
          else
            Some
              (Bitvector.of_packed_bytes
                 (Bytes.of_string (String.sub s l.Io.structure_off l.Io.structure_byte_len))
                 l.Io.structure_bit_len)
        in
        (match structure with
        | None -> ()
        | Some bits ->
          let m = Bitvector.length bits in
          if m > 0 && not (Bitvector.get bits 0) then
            report
              (D.error ~path:[ "structure" ] ~code:"structure/unbalanced"
                 "first parenthesis is a close");
          let excess = ref 0 and first_neg = ref (-1) and zero_before_end = ref (-1) in
          for i = 0 to m - 1 do
            excess := !excess + (if Bitvector.get bits i then 1 else -1);
            if !excess < 0 && !first_neg < 0 then first_neg := i;
            if !excess = 0 && i < m - 1 && !zero_before_end < 0 then zero_before_end := i
          done;
          if !first_neg >= 0 then
            report
              (D.errorf ~path:[ "structure" ] ~code:"structure/unbalanced"
                 "excess goes negative at bit %d" !first_neg);
          if !excess <> 0 then
            report
              (D.errorf ~path:[ "structure" ] ~code:"structure/unbalanced"
                 "string ends with excess %d (expected 0)" !excess);
          if !first_neg < 0 && !excess = 0 && !zero_before_end >= 0 then
            report
              (D.warningf ~path:[ "structure" ] ~code:"structure/forest"
                 "excess returns to 0 at bit %d: more than one root" !zero_before_end);
          if Bitvector.pop_count bits <> l.Io.node_count then
            report
              (D.errorf ~path:[ "structure" ] ~code:"structure/node-count"
                 "%d open parentheses for %d nodes" (Bitvector.pop_count bits) l.Io.node_count);
          (* --- serialized excess directory vs a fresh scan ------------- *)
          if have l.Io.dir_off (l.Io.dir_block_count * 10) then begin
            let stored =
              Io.read_dir_blocks
                ~get_byte:(fun off -> Char.code s.[off])
                ~dir_off:l.Io.dir_off ~dir_block_count:l.Io.dir_block_count
            in
            let fresh =
              Excess_dir.blocks
                (Excess_dir.create ~len:l.Io.structure_bit_len ~byte:(Bitvector.byte bits))
            in
            let bad = ref 0 and first = ref (-1) in
            for b = 0 to l.Io.dir_block_count - 1 do
              if
                stored.Excess_dir.delta.(b) <> fresh.Excess_dir.delta.(b)
                || stored.Excess_dir.fmin.(b) <> fresh.Excess_dir.fmin.(b)
                || stored.Excess_dir.fmax.(b) <> fresh.Excess_dir.fmax.(b)
                || stored.Excess_dir.bmin.(b) <> fresh.Excess_dir.bmin.(b)
                || stored.Excess_dir.bmax.(b) <> fresh.Excess_dir.bmax.(b)
              then begin
                incr bad;
                if !first < 0 then first := b
              end
            done;
            if !bad > 0 then
              report
                (D.errorf ~path:[ "excess directory" ] ~code:"directory/mismatch"
                   "%d of %d blocks disagree with a fresh scan (first: block %d)" !bad
                   l.Io.dir_block_count !first)
          end
          else
            report
              (D.error ~path:[ "excess directory" ] ~code:"layout/size"
                 "excess directory section lies outside the file"));
        (* --- tag sequence ---------------------------------------------- *)
        if have l.Io.tags_off (l.Io.node_count * l.Io.tag_width) then begin
          let bad = ref 0 and first = ref (-1) in
          for rank = 0 to l.Io.node_count - 1 do
            let off = l.Io.tags_off + (rank * l.Io.tag_width) in
            let tag =
              let lo = Char.code s.[off] in
              if l.Io.tag_width = 1 then lo else lo lor (Char.code s.[off + 1] lsl 8)
            in
            if tag >= l.Io.symbol_count then begin
              incr bad;
              if !first < 0 then first := rank
            end
          done;
          if !bad > 0 then
            report
              (D.errorf ~path:[ "tags" ] ~code:"tags/out-of-range"
                 "%d tag ids exceed the %d-entry symbol table (first: rank %d)" !bad
                 l.Io.symbol_count !first)
        end
        else report (D.error ~path:[ "tags" ] ~code:"layout/size" "tag section lies outside the file");
        (* --- has-content flags and their rank samples ------------------ *)
        let flags =
          if have l.Io.flags_off l.Io.flags_byte_len then
            Some
              (Bitvector.of_packed_bytes
                 (Bytes.of_string (String.sub s l.Io.flags_off l.Io.flags_byte_len))
                 l.Io.flags_bit_len)
          else begin
            report
              (D.error ~path:[ "flags" ] ~code:"layout/size" "flag section lies outside the file");
            None
          end
        in
        (match flags with
        | None -> ()
        | Some fl ->
          if Bitvector.pop_count fl <> l.Io.content_count then
            report
              (D.errorf ~path:[ "flags" ] ~code:"flags/content-count"
                 "%d content-bearing nodes flagged but %d contents stored" (Bitvector.pop_count fl)
                 l.Io.content_count);
          if have l.Io.flag_samples_off (8 * l.Io.flag_sample_count) then begin
            let bad = ref 0 and first = ref (-1) in
            for k = 0 to l.Io.flag_sample_count - 1 do
              let boundary = min l.Io.flags_bit_len (k * Excess_dir.block_bits) in
              if read_i64_at s (l.Io.flag_samples_off + (8 * k)) <> Bitvector.rank1 fl boundary
              then begin
                incr bad;
                if !first < 0 then first := k
              end
            done;
            if !bad > 0 then
              report
                (D.errorf ~path:[ "flag rank samples" ] ~code:"flags/rank-sample"
                   "%d of %d serialized rank samples disagree with the flag bits (first: sample %d)"
                   !bad l.Io.flag_sample_count !first)
          end
          else
            report
              (D.error ~path:[ "flag rank samples" ] ~code:"layout/size"
                 "flag rank sample section lies outside the file"));
        (* --- string sections ------------------------------------------- *)
        let offsets_ok ~what ~code ~offsets_off ~blob_off ~count ~blob_len =
          if
            (not (have offsets_off (8 * (count + 1))))
            || not (have blob_off blob_len)
          then begin
            report (D.errorf ~path:[ what ] ~code:"layout/size" "%s section lies outside the file" what);
            false
          end
          else begin
            let ok = ref true in
            let prev = ref 0 in
            if read_i64_at s offsets_off <> 0 then begin
              ok := false;
              report (D.errorf ~path:[ what ] ~code "first offset is not 0")
            end;
            for i = 0 to count do
              let v = read_i64_at s (offsets_off + (8 * i)) in
              if v < !prev || v > blob_len then
                if !ok then begin
                  ok := false;
                  report
                    (D.errorf ~path:[ what ] ~code "offset %d is %d (previous %d, blob %d bytes)" i v
                       !prev blob_len)
                end;
              prev := v
            done;
            if !ok && read_i64_at s (offsets_off + (8 * count)) <> blob_len then begin
              ok := false;
              report
                (D.errorf ~path:[ what ] ~code "final offset %d does not close the %d-byte blob"
                   (read_i64_at s (offsets_off + (8 * count)))
                   blob_len)
            end;
            !ok
          end
        in
        let symbol_blob_len = l.Io.content_offsets_off - l.Io.symbol_blob_off in
        let content_blob_len = l.Io.dir_off - l.Io.content_blob_off in
        let symbols_ok =
          offsets_ok ~what:"symbols" ~code:"symbols/offsets" ~offsets_off:l.Io.symbol_offsets_off
            ~blob_off:l.Io.symbol_blob_off ~count:l.Io.symbol_count ~blob_len:symbol_blob_len
        in
        let contents_ok =
          offsets_ok ~what:"contents" ~code:"contents/offsets" ~offsets_off:l.Io.content_offsets_off
            ~blob_off:l.Io.content_blob_off ~count:l.Io.content_count ~blob_len:content_blob_len
        in
        (* --- content-store samples ------------------------------------- *)
        (match flags with
        | Some fl when contents_ok && l.Io.content_count > 0 ->
          let samples = min 64 l.Io.content_count in
          let bad = ref 0 and first = ref (-1) in
          for k = 0 to samples - 1 do
            let c = k * (l.Io.content_count - 1) / max 1 (samples - 1) in
            let slice_ok =
              let start = read_i64_at s (l.Io.content_offsets_off + (8 * c)) in
              let stop = read_i64_at s (l.Io.content_offsets_off + (8 * (c + 1))) in
              start <= stop && stop <= content_blob_len
            in
            let node_ok =
              match Bitvector.select1 fl c with
              | rank -> rank >= 0 && rank < l.Io.node_count
              | exception Not_found -> false
            in
            if not (slice_ok && node_ok) then begin
              incr bad;
              if !first < 0 then first := c
            end
          done;
          if !bad > 0 then
            report
              (D.errorf ~path:[ "contents" ] ~code:"contents/sample"
                 "%d of %d sampled content ids are unaddressable (first: id %d)" !bad samples !first)
        | _ -> ());
        (* --- content B+-tree ------------------------------------------- *)
        (if symbols_ok && contents_ok then begin
           let string_at ~offsets_off ~blob_off i =
             let start = read_i64_at s (offsets_off + (8 * i)) in
             let stop = read_i64_at s (offsets_off + (8 * (i + 1))) in
             String.sub s (blob_off + start) (stop - start)
           in
           let postings =
             Seq.init l.Io.content_count (fun c ->
                 (string_at ~offsets_off:l.Io.content_offsets_off ~blob_off:l.Io.content_blob_off c, c))
           in
           match Btree.of_seq postings with
           | tree ->
             if not (Btree.check_invariants tree) then
               report
                 (D.error ~path:[ "content index" ] ~code:"index/btree"
                    "rebuilt content B+-tree violates key ordering / occupancy / leaf chaining")
           | exception e ->
             report
               (D.errorf ~path:[ "content index" ] ~code:"index/btree"
                  "content B+-tree rebuild failed: %s" (Printexc.to_string e))
         end);
        (* --- path summary ---------------------------------------------- *)
        (if not (have l.Io.psum_off (Io.psum_row_bytes * l.Io.psum_count)) then
           report
             (D.error ~path:[ "path summary" ] ~code:"layout/size"
                "path summary section lies outside the file")
         else begin
           let np = l.Io.psum_count in
           let rows =
             Array.init np (fun i ->
                 let off = l.Io.psum_off + (Io.psum_row_bytes * i) in
                 {
                   Ps.r_parent = read_i64_at s off;
                   r_label = read_i64_at s (off + 8);
                   r_count = read_i64_at s (off + 16);
                   r_flags = read_i64_at s (off + 24);
                 })
           in
           (* One code per row invariant, reporting the first offender. *)
           let rows_ok = ref true in
           let first_bad p =
             let rec go i = if i >= np then None else if p i rows.(i) then Some i else go (i + 1) in
             go 0
           in
           let row_err code fmt =
             Format.kasprintf
               (fun m ->
                 rows_ok := false;
                 report (D.error ~path:[ "path summary" ] ~code m))
               fmt
           in
           (match first_bad (fun i r -> r.Ps.r_parent < 0 || r.Ps.r_parent > i) with
           | Some i ->
             row_err "summary/parent-order" "node %d has parent link %d (parents must precede)" i
               rows.(i).Ps.r_parent
           | None -> ());
           (match first_bad (fun _ r -> r.Ps.r_label < 0 || r.Ps.r_label >= l.Io.symbol_count) with
           | Some i ->
             row_err "summary/tag-range" "node %d labels symbol %d of a %d-entry table" i
               rows.(i).Ps.r_label l.Io.symbol_count
           | None -> ());
           (match first_bad (fun _ r -> r.Ps.r_count < 1) with
           | Some i -> row_err "summary/count" "node %d has non-positive count %d" i rows.(i).Ps.r_count
           | None -> ());
           (match first_bad (fun _ r -> r.Ps.r_flags land lnot 1 <> 0) with
           | Some i -> row_err "summary/flags" "node %d carries unknown flag bits %#x" i rows.(i).Ps.r_flags
           | None -> ());
           if !rows_ok && symbols_ok then begin
             let symbol_name i =
               let start = read_i64_at s (l.Io.symbol_offsets_off + (8 * i)) in
               let stop = read_i64_at s (l.Io.symbol_offsets_off + (8 * (i + 1))) in
               String.sub s (l.Io.symbol_blob_off + start) (stop - start)
             in
             (* canonical form: siblings strictly label-sorted *)
             let last = Hashtbl.create 16 in
             (match
                first_bad (fun _ r ->
                    let bad =
                      match Hashtbl.find_opt last r.Ps.r_parent with
                      | Some prev ->
                        String.compare (symbol_name prev) (symbol_name r.Ps.r_label) >= 0
                      | None -> false
                    in
                    Hashtbl.replace last r.Ps.r_parent r.Ps.r_label;
                    bad)
              with
             | Some i ->
               report
                 (D.errorf ~path:[ "path summary" ] ~code:"summary/sort-order"
                    "node %d breaks the label-sorted sibling order" i)
             | None ->
               (* counts and shape vs a summary rebuilt from the tag
                  sequence — the serialized synopsis must never drift from
                  the data it summarizes *)
               (match structure with
               | Some bits when have l.Io.tags_off (l.Io.node_count * l.Io.tag_width) -> (
                 let tag_at rank =
                   let off = l.Io.tags_off + (rank * l.Io.tag_width) in
                   let lo = Char.code s.[off] in
                   if l.Io.tag_width = 1 then lo else lo lor (Char.code s.[off + 1] lsl 8)
                 in
                 try
                   let b = Ps.Builder.create () in
                   let rank = ref 0 in
                   for i = 0 to Bitvector.length bits - 1 do
                     if Bitvector.get bits i then begin
                       let tag = tag_at !rank in
                       if tag < 0 || tag >= l.Io.symbol_count then raise Exit;
                       Ps.Builder.open_node b (symbol_name tag);
                       incr rank
                     end
                     else Ps.Builder.close_node b
                   done;
                   let fresh = Ps.Builder.finish b in
                   let ids = Hashtbl.create 16 in
                   for i = 0 to l.Io.symbol_count - 1 do
                     Hashtbl.replace ids (symbol_name i) i
                   done;
                   let fresh_rows = Ps.to_rows fresh ~label_id:(Hashtbl.find ids) in
                   if fresh_rows <> rows then
                     report
                       (D.errorf ~path:[ "path summary" ] ~code:"summary/count-mismatch"
                          "serialized summary (%d nodes) disagrees with one rebuilt from the tag \
                           sequence (%d nodes)"
                          np (Array.length fresh_rows))
                 with Exit | Not_found | Failure _ | Invalid_argument _ ->
                   (* structure/tag corruption reported by earlier passes *)
                   ())
               | _ -> ()))
           end
         end);
        finish ()
      end
    end
  end

(* --- corpus catalogs ----------------------------------------------------- *)

module Catalog = Xqp_storage.Catalog

(* Catalog fsck: parse the manifest, then check every shard container and
   every packed document image (each through [check_bytes], diagnostics
   prefixed with shard/doc), plus the summary algebra the planner trusts:
   each shard summary is the merge of its documents' packed summaries,
   the merged summary is the merge of the shard summaries, and the merged
   stats version dominates every shard's. *)
let check_catalog ~path contents =
  match Catalog.of_bytes ~path contents with
  | exception Failure m -> [ D.errorf ~path:[ "catalog" ] ~code:"corpus/catalog" "%s" m ]
  | cat ->
    let diags = ref [] in
    let report d = diags := d :: !diags in
    if Array.length cat.Catalog.shards = 0 then
      report (D.error ~path:[ "catalog" ] ~code:"corpus/shard-count" "catalog has no shards");
    Array.iter
      (fun (sh : Catalog.shard) ->
        if sh.Catalog.stats_version > cat.Catalog.merged_stats_version then
          report
            (D.errorf ~path:[ sh.Catalog.shard_path ] ~code:"corpus/stats-version"
               "shard stats version %d exceeds the merged version %d" sh.Catalog.stats_version
               cat.Catalog.merged_stats_version))
      cat.Catalog.shards;
    let shard_summaries =
      Array.to_list (Array.map (fun (s : Catalog.shard) -> s.Catalog.summary) cat.Catalog.shards)
    in
    if not (Ps.equal cat.Catalog.merged (Ps.merge shard_summaries)) then
      report
        (D.error ~path:[ "catalog" ] ~code:"corpus/merged-mismatch"
           "merged summary is not the merge of the shard summaries");
    Array.iteri
      (fun i (sh : Catalog.shard) ->
        let spath = Catalog.shard_file cat i in
        let label = sh.Catalog.shard_path in
        match In_channel.with_open_bin spath In_channel.input_all with
        | exception Sys_error m ->
          report (D.errorf ~path:[ label ] ~code:"corpus/shard-missing" "%s" m)
        | scontents -> (
          match Catalog.shard_doc_table ~path:spath scontents with
          | exception Failure m ->
            report (D.errorf ~path:[ label ] ~code:"corpus/shard-container" "%s" m)
          | table ->
            if Array.length table <> Array.length sh.Catalog.doc_names then
              report
                (D.errorf ~path:[ label ] ~code:"corpus/shard-count"
                   "container holds %d documents but the catalog lists %d" (Array.length table)
                   (Array.length sh.Catalog.doc_names))
            else begin
              let summaries = ref [] in
              Array.iteri
                (fun d (off, len) ->
                  let image = String.sub scontents off len in
                  let doc_label = Printf.sprintf "%s/doc%d(%s)" label d sh.Catalog.doc_names.(d) in
                  List.iter (fun dg -> report (D.with_path doc_label dg)) (check_bytes image);
                  match Io.packed_summary ~path:spath image with
                  | summary -> summaries := summary :: !summaries
                  | exception Failure m ->
                    report (D.errorf ~path:[ doc_label ] ~code:"corpus/doc-bounds" "%s" m))
                table;
              if
                List.length !summaries = Array.length table
                && not (Ps.equal sh.Catalog.summary (Ps.merge (List.rev !summaries)))
              then
                report
                  (D.error ~path:[ label ] ~code:"corpus/shard-summary"
                     "shard summary is not the merge of its documents' packed summaries")
            end))
      cat.Catalog.shards;
    List.rev !diags

let fsck path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s ->
    if
      Catalog.is_catalog_path path
      || (String.length s >= 8 && String.equal (String.sub s 0 8) Catalog.magic)
    then check_catalog ~path s
    else check_bytes s
  | exception Sys_error m -> [ D.errorf ~code:"io/unreadable" "%s" m ]
