module Pg = Xqp_algebra.Pattern_graph
module D = Diagnostic

(* --- value-predicate satisfiability ------------------------------------ *)

(* An interval with optional bounds; [lo_strict] means the bound itself is
   excluded. Works for both floats and strings through [cmp]. *)
type 'a interval = {
  lo : 'a option;
  lo_strict : bool;
  hi : 'a option;
  hi_strict : bool;
  ne : 'a list; (* excluded points *)
}

let top = { lo = None; lo_strict = false; hi = None; hi_strict = false; ne = [] }

let tighten_lo cmp iv v strict =
  match iv.lo with
  | None -> { iv with lo = Some v; lo_strict = strict }
  | Some l ->
    let c = cmp v l in
    if c > 0 || (c = 0 && strict) then { iv with lo = Some v; lo_strict = strict } else iv

let tighten_hi cmp iv v strict =
  match iv.hi with
  | None -> { iv with hi = Some v; hi_strict = strict }
  | Some h ->
    let c = cmp v h in
    if c < 0 || (c = 0 && strict) then { iv with hi = Some v; hi_strict = strict } else iv

let add_constraint cmp iv (c : Pg.comparison) v =
  match c with
  | Pg.Eq -> tighten_hi cmp (tighten_lo cmp iv v false) v false
  | Pg.Ne -> { iv with ne = v :: iv.ne }
  | Pg.Lt -> tighten_hi cmp iv v true
  | Pg.Le -> tighten_hi cmp iv v false
  | Pg.Gt -> tighten_lo cmp iv v true
  | Pg.Ge -> tighten_lo cmp iv v false
  | Pg.Contains -> iv (* handled separately *)

(* Emptiness of the interval. Strings and floats are both dense enough for
   our purposes: an open interval between two distinct values is treated as
   nonempty (conservative: no false contradiction), and a point interval
   killed by a [ne] exclusion is empty. *)
let interval_empty cmp iv =
  match (iv.lo, iv.hi) with
  | Some l, Some h ->
    let c = cmp l h in
    if c > 0 then true
    else if c = 0 then iv.lo_strict || iv.hi_strict || List.exists (fun x -> cmp x l = 0) iv.ne
    else false
  | _ -> false

let float_in cmp iv v =
  (match iv.lo with
  | None -> true
  | Some l ->
    let c = cmp v l in
    if iv.lo_strict then c > 0 else c >= 0)
  && (match iv.hi with
     | None -> true
     | Some h ->
       let c = cmp v h in
       if iv.hi_strict then c < 0 else c <= 0)
  && not (List.exists (fun x -> cmp x v = 0) iv.ne)

let contradiction preds =
  let contains_num =
    List.exists
      (fun p -> match (p.Pg.comparison, p.Pg.literal) with Pg.Contains, Pg.Num _ -> true | _ -> false)
      preds
  in
  if contains_num then Some "contains() with a numeric literal never matches"
  else begin
    let num_iv =
      List.fold_left
        (fun iv p ->
          match p.Pg.literal with Pg.Num n -> add_constraint Float.compare iv p.Pg.comparison n | Pg.Str _ -> iv)
        top preds
    in
    let str_iv =
      List.fold_left
        (fun iv p ->
          match (p.Pg.comparison, p.Pg.literal) with
          | Pg.Contains, _ -> iv
          | _, Pg.Str s -> add_constraint String.compare iv p.Pg.comparison s
          | _, Pg.Num _ -> iv)
        top preds
    in
    if interval_empty Float.compare num_iv then Some "numeric constraints have an empty intersection"
    else if interval_empty String.compare str_iv then Some "string constraints have an empty intersection"
    else begin
      (* A string equality pins the value exactly; the numeric constraints
         must then hold of that witness (non-numeric strings fail them). *)
      let str_eq =
        List.find_map
          (fun p ->
            match (p.Pg.comparison, p.Pg.literal) with Pg.Eq, Pg.Str s -> Some s | _ -> None)
          preds
      in
      let has_num_constraint =
        List.exists
          (fun p ->
            match (p.Pg.comparison, p.Pg.literal) with
            | (Pg.Eq | Pg.Lt | Pg.Le | Pg.Gt | Pg.Ge), Pg.Num _ -> true
            | _ -> false)
          preds
      in
      match str_eq with
      | Some s when has_num_constraint -> (
        match float_of_string_opt (String.trim s) with
        | None -> Some (Printf.sprintf "value pinned to non-numeric %S but numerically constrained" s)
        | Some v ->
          if float_in Float.compare num_iv v then None
          else Some (Printf.sprintf "value pinned to %S, outside the numeric constraints" s))
      | _ -> None
    end
  end

(* --- graph validation --------------------------------------------------- *)

let check pg =
  let n = Pg.vertex_count pg in
  let diags = ref [] in
  let report d = diags := d :: !diags in
  let vpath v = [ Printf.sprintf "vertex %d" v ] in
  if n = 0 then report (D.error ~code:"pattern/output" "pattern has no vertices")
  else begin
    (* outputs *)
    (match Pg.outputs pg with
    | [] -> report (D.error ~code:"pattern/output" "pattern has no output vertex")
    | [ v ] ->
      if v = 0 then report (D.error ~code:"pattern/output" "context vertex marked as output")
    | several ->
      report
        (D.errorf ~code:"pattern/output" "pattern has %d output vertices (expected exactly one)"
           (List.length several)));
    (* arcs: ranges, single parent, none into the context vertex *)
    let parent_seen = Array.make n false in
    List.iter
      (fun (s, t, _) ->
        if s < 0 || s >= n || t < 0 || t >= n then
          report (D.errorf ~code:"pattern/arc" "arc (%d, %d) has an endpoint out of range" s t)
        else begin
          if t = 0 then report (D.error ~code:"pattern/arc" "arc enters the context vertex");
          if parent_seen.(t) then
            report (D.errorf ~path:(vpath t) ~code:"pattern/arc" "vertex %d has two parents" t)
          else parent_seen.(t) <- true
        end)
      (Pg.arcs pg);
    (* connectivity / acyclicity: climb the parent chain from each vertex *)
    for v = 1 to n - 1 do
      let rec climb u steps =
        if steps > n then report (D.errorf ~path:(vpath v) ~code:"pattern/cycle" "vertex %d lies on a parent cycle" v)
        else
          match Pg.parent pg u with
          | None ->
            if u <> 0 then
              report
                (D.errorf ~path:(vpath v) ~code:"pattern/disconnected"
                   "vertex %d does not reach the context vertex" v)
          | Some (p, _) -> climb p (steps + 1)
      in
      climb v 0
    done;
    (* adjacency views agree with the arc list *)
    List.iter
      (fun (s, t, rel) ->
        if s >= 0 && s < n && t >= 0 && t < n && t <> 0 then begin
          (match Pg.parent pg t with
          | Some (s', rel') when s' = s && rel' = rel -> ()
          | _ ->
            report
              (D.errorf ~path:(vpath t) ~code:"pattern/adjacency"
                 "parent view disagrees with arc (%d, %d)" s t));
          if not (List.exists (fun (c, rel') -> c = t && rel' = rel) (Pg.children pg s)) then
            report
              (D.errorf ~path:(vpath s) ~code:"pattern/adjacency"
                 "children view is missing arc (%d, %d)" s t)
        end)
      (Pg.arcs pg);
    (if List.length (Pg.arcs pg) <> List.fold_left (fun acc v -> acc + List.length (Pg.children pg v)) 0 (List.init n (fun i -> i))
     then report (D.error ~code:"pattern/adjacency" "children views and arc list have different sizes"));
    (* attribute vertices are leaves *)
    for v = 1 to n - 1 do
      match Pg.parent pg v with
      | Some (_, Pg.Attribute) ->
        if Pg.children pg v <> [] then
          report
            (D.errorf ~path:(vpath v) ~code:"pattern/attr-internal"
               "vertex %d is reached over an attribute arc but has children" v)
      | _ -> ()
    done;
    (* per-vertex predicate satisfiability *)
    for v = 0 to n - 1 do
      let vx = Pg.vertex pg v in
      match contradiction vx.Pg.predicates with
      | None -> ()
      | Some msg ->
        let code =
          if
            List.exists
              (fun p ->
                match (p.Pg.comparison, p.Pg.literal) with Pg.Contains, Pg.Num _ -> true | _ -> false)
              vx.Pg.predicates
          then "pattern/contains-num"
          else "pattern/contradiction"
        in
        report (D.error ~path:(vpath v) ~code msg)
    done
  end;
  List.rev !diags
