module St = Xqp_algebra.Schema_tree
module Doc = Xqp_xml.Document
module SS = Set.Make (String)
module SM = Map.Make (String)

type entry = {
  children : SS.t;   (** child element names *)
  attrs : SS.t;      (** attribute names *)
  open_ : bool;      (** content not statically known *)
}

type t = { elements : entry SM.t; roots : SS.t }

let empty = { elements = SM.empty; roots = SS.empty }
let empty_entry = { children = SS.empty; attrs = SS.empty; open_ = false }

let add_entry t name f =
  let prev = match SM.find_opt name t.elements with Some e -> e | None -> empty_entry in
  { t with elements = SM.add name (f prev) t.elements }

let add_child t parent child = add_entry t parent (fun e -> { e with children = SS.add child e.children })
let add_attr t parent attr = add_entry t parent (fun e -> { e with attrs = SS.add attr e.attrs })
let mark_open t name = add_entry t name (fun e -> { e with open_ = true })
let ensure t name = add_entry t name (fun e -> e)

(* --- sources ----------------------------------------------------------- *)

let of_schema_tree tree =
  (* [walk parent acc node]: [parent = None] at the top. For_group /
     For_component / If_component are transparent repetition or conditional
     containers; their children belong to the enclosing element. *)
  let rec walk parent acc node =
    match (node : St.t) with
    | St.Text _ -> acc
    | St.Placeholder _ -> (
      (* statically unknown content in this position *)
      match parent with Some p -> mark_open acc p | None -> acc)
    | St.For_group kids | St.For_component (_, kids) | St.If_component (_, kids) ->
      List.fold_left (walk parent) acc kids
    | St.Element e ->
      let acc =
        match parent with
        | Some p -> add_child acc p e.name
        | None -> { acc with roots = SS.add e.name acc.roots }
      in
      let acc = ensure acc e.name in
      let acc =
        List.fold_left
          (fun acc (k, a) ->
            let acc = add_attr acc e.name k in
            match a with St.From_component _ -> acc | St.Fixed _ -> acc)
          acc e.attrs
      in
      List.fold_left (walk (Some e.name)) acc e.children
  in
  walk None empty tree

let of_document doc =
  let root = Doc.root doc in
  let acc = ref { empty with roots = SS.singleton (Doc.name doc root) } in
  acc := ensure !acc (Doc.name doc root);
  Doc.iter_descendants doc root (fun n ->
      if Doc.kind doc n = Doc.Element then begin
        let name = Doc.name doc n in
        acc := ensure !acc name;
        (match Doc.parent doc n with
        | Some p when Doc.kind doc p = Doc.Element -> acc := add_child !acc (Doc.name doc p) name
        | _ -> ());
        List.iter (fun a -> acc := add_attr !acc name (Doc.name doc a)) (Doc.attributes doc n)
      end);
  !acc

let merge a b =
  {
    elements =
      SM.union
        (fun _ ea eb ->
          Some
            {
              children = SS.union ea.children eb.children;
              attrs = SS.union ea.attrs eb.attrs;
              open_ = ea.open_ || eb.open_;
            })
        a.elements b.elements;
    roots = SS.union a.roots b.roots;
  }

(* --- queries ----------------------------------------------------------- *)

let has_element t name = SM.mem name t.elements
let has_attribute t name = SM.exists (fun _ e -> SS.mem name e.attrs) t.elements
let roots t = SS.elements t.roots
let element_count t = SM.cardinal t.elements

let entry_of t name = SM.find_opt name t.elements

let children_of t name =
  match entry_of t name with
  | None -> Some []
  | Some e -> if e.open_ then None else Some (SS.elements e.children)

let attributes_of t name =
  match entry_of t name with
  | None -> Some []
  | Some e -> if e.open_ then None else Some (SS.elements e.attrs)

let child_of t ~parents name =
  List.exists
    (fun p ->
      match entry_of t p with
      | None -> false
      | Some e -> e.open_ || SS.mem name e.children)
    parents

let attribute_on t ~parents name =
  List.exists
    (fun p ->
      match entry_of t p with
      | None -> false
      | Some e -> e.open_ || SS.mem name e.attrs)
    parents

(* Reachability below a seed set, open elements absorbing everything. *)
let closure t parents =
  let rec grow seen frontier open_hit =
    match frontier with
    | [] -> (seen, open_hit)
    | p :: rest -> (
      match entry_of t p with
      | None -> grow seen rest open_hit
      | Some e ->
        if e.open_ then grow seen rest true
        else
          let fresh = SS.diff e.children seen in
          grow (SS.union seen fresh) (SS.elements fresh @ rest) open_hit)
  in
  grow SS.empty parents false

let descendant_of t ~parents name =
  let reachable, open_hit = closure t parents in
  open_hit || SS.mem name reachable

let all_children t ~parents =
  let rec gather acc = function
    | [] -> Some (SS.elements acc)
    | p :: rest -> (
      match entry_of t p with
      | None -> gather acc rest
      | Some e -> if e.open_ then None else gather (SS.union acc e.children) rest)
  in
  gather SS.empty parents

let all_descendants t ~parents =
  let reachable, open_hit = closure t parents in
  if open_hit then None else Some (SS.elements reachable)

let pp ppf t =
  Format.fprintf ppf "@[<v>roots: %s@," (String.concat " " (SS.elements t.roots));
  SM.iter
    (fun name e ->
      Format.fprintf ppf "%s%s -> {%s}%s@," name
        (if e.open_ then " (open)" else "")
        (String.concat " " (SS.elements e.children))
        (if SS.is_empty e.attrs then ""
         else Printf.sprintf " @[%s]" (String.concat " " (SS.elements e.attrs))))
    t.elements;
  Format.fprintf ppf "@]"
