type severity = Error | Warning | Info

type t = { severity : severity; code : string; path : string list; message : string }

let make severity ?(path = []) ~code message = { severity; code; path; message }
let error ?path ~code message = make Error ?path ~code message
let warning ?path ~code message = make Warning ?path ~code message
let info ?path ~code message = make Info ?path ~code message

let kmake severity ?path ~code fmt =
  Format.kasprintf (fun message -> make severity ?path ~code message) fmt

let errorf ?path ~code fmt = kmake Error ?path ~code fmt
let warningf ?path ~code fmt = kmake Warning ?path ~code fmt

let with_path segment d = { d with path = segment :: d.path }

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let severity_compare a b = compare (severity_rank b) (severity_rank a)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some (List.fold_left (fun acc d -> if severity_compare d.severity acc > 0 then d.severity else acc) d.severity ds)

let by_code ds =
  List.fold_left
    (fun acc d ->
      if List.mem_assoc d.code acc then
        List.map (fun (c, n) -> if String.equal c d.code then (c, n + 1) else (c, n)) acc
      else acc @ [ (d.code, 1) ])
    [] ds

let sort ds = List.stable_sort (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity)) ds

let pp_severity ppf s =
  Format.pp_print_string ppf (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp ppf d =
  Format.fprintf ppf "%a[%s]" pp_severity d.severity d.code;
  (match d.path with
  | [] -> ()
  | path ->
    Format.fprintf ppf " at %a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " > ") Format.pp_print_string)
      path);
  Format.fprintf ppf ": %s" d.message

module J = Xqp_obs.Json

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let to_json d =
  J.Obj
    [
      ("severity", J.Str (Format.asprintf "%a" pp_severity d.severity));
      ("code", J.Str d.code);
      ("path", J.Arr (List.map (fun s -> J.Str s) d.path));
      ("message", J.Str d.message);
    ]

let of_json j =
  let str name = Option.bind (J.member name j) J.to_str in
  match (Option.bind (str "severity") severity_of_string, str "code", str "message") with
  | Some severity, Some code, Some message ->
    let path =
      match Option.bind (J.member "path" j) J.to_arr with
      | Some items -> List.filter_map J.to_str items
      | None -> []
    in
    Some { severity; code; path; message }
  | _ -> None

let pp_report ppf ds =
  let ds = sort ds in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@." (count Error) (count Warning) (count Info)
