(** Domain-safety analyzer ([xqp lint --domains], [scripts/mutaudit]).

    Walks the Parsetree of every [.ml] file (via compiler-libs) and
    flags {e toplevel mutable state} — the only state OCaml 5 domains
    can share by accident: global [ref]s, [Hashtbl]/[Queue]/[Buffer]
    values, mutable arrays, records with [mutable] fields (including
    ones built by in-file or [create]-shaped constructors), toplevel
    [lazy] values and [Atomic.t]s. Each discovered site must appear in
    a declared safety-annotation table stating {e why} it is safe to
    share; an unannotated site is an error, so new global mutable state
    cannot land silently (the same report-all discipline as
    {!Store_check}).

    The annotation vocabulary (DESIGN.md §11):
    - [Safe_immutable] — written only during module initialization,
      before any domain can be spawned, and never mutated afterwards
      (precomputed lookup tables);
    - [Guarded_by_mutex m] — every access path takes the named mutex or
      {!Xqp_obs.Dsan.guard};
    - [Atomic] — the value is an [Atomic.t] (or a record of them) and
      all updates are single atomic operations;
    - [Domain_local] — confined to one domain at a time, enforced
      dynamically by a {!Xqp_obs.Dsan.owner} stamp or [Domain.DLS];
    - [Unsafe] — a known-unsafe site awaiting a fix: always an error,
      kept so the table can record debt without hiding it. *)

type annotation =
  | Safe_immutable
  | Guarded_by_mutex of string  (** argument names the guarding lock *)
  | Atomic
  | Domain_local
  | Unsafe

val annotation_name : annotation -> string

(** What shape of mutable state a site is, from the syntax that built it. *)
type kind =
  | Global_ref       (** [let x = ref …] *)
  | Mutable_table    (** [Hashtbl]/[Queue]/[Stack]/[Buffer]/[Weak].create *)
  | Mutable_array    (** [Array]/[Bytes] constructors or array literals *)
  | Mutable_record   (** record literal with a [mutable] field, or a
                         [create]/[make]/[init]-shaped constructor call *)
  | Toplevel_lazy    (** [let x = lazy …] — forcing races raise in OCaml 5 *)
  | Atomic_value     (** [Atomic.make] — safe, but must be annotated [Atomic] *)

val kind_name : kind -> string

type site = {
  file : string;        (** path as given to the scanner *)
  id : string;          (** ["Module.Sub.name"], module from the file name *)
  kind : kind;
  line : int;
}

val scan_file : string -> site list * Diagnostic.t list
(** Parse one [.ml] file and return its toplevel mutable sites.
    Unparseable files yield a [domain/parse-error] diagnostic. *)

val scan_path : string -> site list * Diagnostic.t list
(** [scan_path p]: [p] is an [.ml] file or a directory scanned
    recursively (skipping [_build] and dot-directories). *)

val annotations : (string * annotation * string) list
(** The repository's declared table: (site id, annotation, why). *)

val check :
  ?table:(string * annotation * string) list ->
  ?stale:bool ->
  site list ->
  Diagnostic.t list
(** Check discovered sites against the table (default {!annotations}).
    Unannotated sites are errors coded by kind ([domain/global-ref],
    [domain/unguarded-table], [domain/mutable-array],
    [domain/mutable-state], [domain/toplevel-lazy],
    [domain/missing-annotation]); [Unsafe] entries are [domain/unsafe]
    errors; impossible pairings ([Atomic] on a non-atomic,
    [Safe_immutable] on a [ref]) are [domain/annotation-mismatch]
    warnings. With [stale] (default [true]), table entries matching no
    site are [domain/stale-annotation] warnings, so the table cannot
    outlive the code it describes. *)

val audit :
  ?table:(string * annotation * string) list ->
  ?stale:bool ->
  string list ->
  Diagnostic.t list
(** [audit paths]: scan every path and check the combined site list —
    the entry point shared by [xqp lint --domains] and
    [scripts/mutaudit]. *)
