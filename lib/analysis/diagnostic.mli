(** Structured diagnostics for the static-analysis passes.

    Every checker in this library ({!Plan_check}, {!Pattern_check},
    {!Store_check}) reports through this one type instead of raising or
    printing, so callers (the [xqp lint] / [xqp fsck] subcommands, the
    executor's debug verification, the test suite) can filter by severity,
    count by code, and render uniformly.

    A diagnostic names {e where} (an operator path from the checked root,
    e.g. ["step 3"; "predicate 1"], or a store section plus offset),
    {e what} (a stable [code] like ["sort/empty-step"], suitable for
    asserting on in tests), and {e how bad} ([severity]). *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;       (** stable machine name, ["pass/kind"] *)
  path : string list;  (** operator path from the checked root, outermost first *)
  message : string;    (** human explanation *)
}

val error : ?path:string list -> code:string -> string -> t
val warning : ?path:string list -> code:string -> string -> t
val info : ?path:string list -> code:string -> string -> t

val errorf : ?path:string list -> code:string -> ('a, Format.formatter, unit, t) format4 -> 'a
val warningf : ?path:string list -> code:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val with_path : string -> t -> t
(** Prepend one path segment (used when bubbling out of a sub-checker). *)

val severity_compare : severity -> severity -> int
(** Orders [Error > Warning > Info]. *)

val errors : t list -> t list
(** Only the [Error]-severity diagnostics. *)

val max_severity : t list -> severity option
(** [None] on an empty list. *)

val has_errors : t list -> bool

val by_code : t list -> (string * int) list
(** Distinct codes with their multiplicities, in first-seen order. *)

val sort : t list -> t list
(** Stable sort, most severe first. *)

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
(** Renders as [severity code at path: message]. *)

val pp_report : Format.formatter -> t list -> unit
(** One diagnostic per line, most severe first, then a summary line. *)

val to_json : t -> Xqp_obs.Json.t
(** [{"severity": …, "code": …, "path": […], "message": …}] — the record
    behind [xqp lint --json] (one object per line). *)

val of_json : Xqp_obs.Json.t -> t option
(** Inverse of {!to_json}; [None] when required fields are missing or the
    severity name is unknown. *)
