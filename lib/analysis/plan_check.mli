(** Sort checking for logical plans (§3.1–3.2).

    The paper's algebra is sorted: every operator consumes and produces
    values of known sorts ([List], [NestedList], [Tree], [PatternGraph],
    [SchemaTree], [Env]). In this implementation each {!Xqp_algebra.Logical_plan}
    node denotes a [List] of document nodes; what distinguishes plans is
    the {e node-kind component} of that sort — which of {document, element,
    attribute, text} the list can contain. This pass infers that component
    bottom-up through every axis/test/predicate combination and rejects
    plans whose sort is statically empty: an attribute axis from an
    attribute context, a [text()] test on the attribute axis, steps below a
    text node, a τ applied from a non-element context, contradictory value
    predicates, non-positive positional predicates.

    Codes: [sort/empty-step], [sort/tpm-context], [sort/position],
    [sort/position-singleton] (warning), [sort/contradiction],
    [sort/contains-num], plus everything {!Pattern_check} reports for
    embedded pattern graphs (bubbled with a [tpm] path segment).

    With a {!Schema_info} summary the pass additionally tracks the set of
    element names the context can have and warns about name tests that are
    unsatisfiable under the workload schemas: [schema/unknown-name] (the
    name occurs nowhere) and [schema/empty] (the name occurs, but not in
    this position). Schema findings are warnings — instances outside the
    summarized workload could still match — and [xqp lint --strict]
    promotes them. *)

type kind = Doc_node | Element | Attribute | Text

type kinds
(** A set of node kinds. *)

val kinds : kind list -> kinds
val kind_list : kinds -> kind list
val any_node : kinds
(** All four kinds — the context assumption when nothing is known. *)

val document_context : kinds
(** Just {!Doc_node}: the context of an absolute query ([Executor.query]
    evaluates plans with the virtual document node as context). *)

val pp_kinds : Format.formatter -> kinds -> unit

type sort = Node_list of kinds
    (** The paper's [List] sort, refined by the kinds its nodes can have.
        Embedded pattern graphs have sort [PatternGraph] and are checked by
        {!Pattern_check}; predicates have sort [Boolean]. *)

val pp_sort : Format.formatter -> sort -> unit

val infer : ?context:kinds -> Xqp_algebra.Logical_plan.t -> sort * Diagnostic.t list
(** Infer the result sort of a plan whose [Context] has the given kinds
    (default {!any_node}) and report every ill-sorted node on the way.
    A plan is {e well-sorted} when no diagnostic has severity [Error]. *)

val check :
  ?context:kinds -> ?schema:Schema_info.t -> Xqp_algebra.Logical_plan.t -> Diagnostic.t list
(** {!infer}'s diagnostics plus, when [schema] is given, the emptiness
    analysis against it. *)
