(** Composition of the analysis passes — what [xqp lint] and the
    executor's debug verification call.

    {!verified_optimize} is the instrumented rewriting entry point: it
    sort-checks the input plan, applies each rewrite rule of
    {!Xqp_algebra.Rewrite} separately (R0 axis normalization, then R1/R2
    fusion into τ), and re-checks after every rule, tagging each
    diagnostic's path with the rule that produced the offending plan
    ([after R0 (simplify)] / [after R1/R2 (fuse)]). A rewrite that breaks
    a sort or pattern invariant is therefore caught at the rule that
    introduced it, not at query time. The returned plan is exactly
    {!Xqp_algebra.Rewrite.optimize}'s result. *)

val check_plan :
  ?context:Plan_check.kinds ->
  ?schema:Schema_info.t ->
  Xqp_algebra.Logical_plan.t ->
  Diagnostic.t list
(** One-shot check of a plan as-is: sort inference, embedded pattern
    graphs, and (when [schema] is given) emptiness analysis. *)

val verified_optimize :
  ?context:Plan_check.kinds ->
  ?schema:Schema_info.t ->
  Xqp_algebra.Logical_plan.t ->
  Xqp_algebra.Logical_plan.t * Diagnostic.t list
(** Optimize with verification after each rule (see above). The plan is
    safe to execute iff the diagnostics contain no [Error]. *)

type physical_tau = {
  tau_pattern : Xqp_algebra.Pattern_graph.t;
  tau_engine : string;   (** the bound engine's strategy name *)
  tau_supported : bool;  (** the planner's capability predicate for it *)
  tau_estimate : float;  (** the τ operator's cardinality annotation *)
}
(** Per-τ summary of a compiled physical plan. The physical IR itself
    lives in [xqp_physical], which depends on this library, so the
    executor projects each binding into this record before calling
    {!check_physical}. *)

val check_physical :
  ?context:Plan_check.kinds ->
  ?schema:Schema_info.t ->
  logical:Xqp_algebra.Logical_plan.t ->
  physical_tau list ->
  Diagnostic.t list
(** Compile-time check of a physical plan: {!check_plan} over the logical
    erasure, plus per-τ invariants — errors [physical/auto-engine] (a τ
    bound to [auto]) and [physical/unsupported-engine] (binding violates
    the engine's capability predicate), warning [physical/estimate]
    (non-finite or negative cardinality annotation). *)

val acceptable : strict:bool -> Diagnostic.t list -> bool
(** The lint gate: no errors — and, when [strict], no warnings either. *)
