(** Composition of the analysis passes — what [xqp lint] and the
    executor's debug verification call.

    {!verified_optimize} is the instrumented rewriting entry point: it
    sort-checks the input plan, applies each rewrite rule of
    {!Xqp_algebra.Rewrite} separately (R0 axis normalization, then R1/R2
    fusion into τ), and re-checks after every rule, tagging each
    diagnostic's path with the rule that produced the offending plan
    ([after R0 (simplify)] / [after R1/R2 (fuse)]). A rewrite that breaks
    a sort or pattern invariant is therefore caught at the rule that
    introduced it, not at query time. The returned plan is exactly
    {!Xqp_algebra.Rewrite.optimize}'s result. *)

val check_plan :
  ?context:Plan_check.kinds ->
  ?schema:Schema_info.t ->
  Xqp_algebra.Logical_plan.t ->
  Diagnostic.t list
(** One-shot check of a plan as-is: sort inference, embedded pattern
    graphs, and (when [schema] is given) emptiness analysis. *)

val verified_optimize :
  ?context:Plan_check.kinds ->
  ?schema:Schema_info.t ->
  Xqp_algebra.Logical_plan.t ->
  Xqp_algebra.Logical_plan.t * Diagnostic.t list
(** Optimize with verification after each rule (see above). The plan is
    safe to execute iff the diagnostics contain no [Error]. *)

val acceptable : strict:bool -> Diagnostic.t list -> bool
(** The lint gate: no errors — and, when [strict], no warnings either. *)
