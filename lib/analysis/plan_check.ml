module Lp = Xqp_algebra.Logical_plan
module Pg = Xqp_algebra.Pattern_graph
module Axis = Xqp_algebra.Axis
module D = Diagnostic
module SS = Set.Make (String)

type kind = Doc_node | Element | Attribute | Text

(* Kind sets as 4-bit masks. *)
type kinds = int

let bit = function Doc_node -> 1 | Element -> 2 | Attribute -> 4 | Text -> 8
let kinds ks = List.fold_left (fun acc k -> acc lor bit k) 0 ks
let all_kinds = [ Doc_node; Element; Attribute; Text ]
let kind_list m = List.filter (fun k -> m land bit k <> 0) all_kinds
let any_node = kinds all_kinds
let document_context = bit Doc_node
let elem_like = bit Doc_node lor bit Element

let kind_name = function
  | Doc_node -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"

let pp_kinds ppf m =
  if m = 0 then Format.pp_print_string ppf "none"
  else
    Format.fprintf ppf "{%s}" (String.concat ", " (List.map kind_name (kind_list m)))

type sort = Node_list of kinds

let pp_sort ppf (Node_list m) = Format.fprintf ppf "List%a" pp_kinds m

(* --- kind transitions --------------------------------------------------- *)

(* What kinds can one navigation step reach from a single context kind,
   before the node test applies? Mirrors {!Xqp_physical.Navigation}'s
   axis semantics: attributes and texts are leaves, the virtual document
   node has the root element as its only child and no upward/sideways
   context, sibling axes can see elements and texts. *)
let axis_from_kind k (axis : Axis.t) =
  let e = bit Element and t = bit Text and a = bit Attribute and d = bit Doc_node in
  match k with
  | Doc_node -> (
    match axis with
    | Axis.Self -> d
    | Axis.Child | Axis.Descendant -> e lor t
    | Axis.Descendant_or_self -> d lor e lor t
    | Axis.Attribute | Axis.Parent | Axis.Ancestor | Axis.Ancestor_or_self
    | Axis.Following_sibling | Axis.Preceding_sibling | Axis.Following | Axis.Preceding ->
      0)
  | Element -> (
    match axis with
    | Axis.Self -> e
    | Axis.Child | Axis.Descendant -> e lor t
    | Axis.Descendant_or_self -> e lor t
    | Axis.Attribute -> a
    | Axis.Parent | Axis.Ancestor -> e lor d
    | Axis.Ancestor_or_self -> e lor d
    | Axis.Following_sibling | Axis.Preceding_sibling | Axis.Following | Axis.Preceding -> e lor t)
  | Attribute -> (
    match axis with
    | Axis.Self -> a
    | Axis.Descendant_or_self -> a
    | Axis.Child | Axis.Descendant | Axis.Attribute -> 0
    | Axis.Parent -> e
    | Axis.Ancestor -> e lor d
    | Axis.Ancestor_or_self -> a lor e lor d
    | Axis.Following_sibling | Axis.Preceding_sibling | Axis.Following | Axis.Preceding -> e lor t)
  | Text -> (
    match axis with
    | Axis.Self -> t
    | Axis.Descendant_or_self -> t
    | Axis.Child | Axis.Descendant | Axis.Attribute -> 0
    | Axis.Parent -> e
    | Axis.Ancestor -> e lor d
    | Axis.Ancestor_or_self -> t lor e lor d
    | Axis.Following_sibling | Axis.Preceding_sibling | Axis.Following | Axis.Preceding -> e lor t)

let axis_kinds ctx axis =
  List.fold_left (fun acc k -> acc lor axis_from_kind k axis) 0 (kind_list ctx)

(* The node test's kind filter ({!Xqp_physical.Navigation.test_matches}):
   name tests see elements — attributes on the attribute axis; [*]
   additionally passes the virtual document node on a bare [self::*];
   [text()] sees text nodes. *)
let test_kinds (axis : Axis.t) (test : Lp.node_test) =
  match test with
  | Lp.Name _ -> if axis = Axis.Attribute then bit Attribute else bit Element
  | Lp.Any ->
    if axis = Axis.Attribute then bit Attribute
    else bit Element lor (if axis = Axis.Self then bit Doc_node else 0)
  | Lp.Text_node -> if axis = Axis.Attribute then 0 else bit Text

let test_name = function
  | Lp.Name n -> n
  | Lp.Any -> "*"
  | Lp.Text_node -> "text()"

let step_label (s : Lp.step) = Printf.sprintf "%s::%s" (Axis.to_string s.Lp.axis) (test_name s.Lp.test)

(* --- sort inference ----------------------------------------------------- *)

let singleton_axis = function Axis.Self | Axis.Parent -> true | _ -> false

let rec go plan ~context =
  match (plan : Lp.t) with
  | Lp.Root -> (document_context, [], 0)
  | Lp.Context -> (context, [], 0)
  | Lp.Union (a, b) ->
    let ka, da, _ = go a ~context in
    let kb, db, _ = go b ~context in
    ( ka lor kb,
      List.map (D.with_path "union left") da @ List.map (D.with_path "union right") db,
      0 )
  | Lp.Tpm (base, pg) ->
    let kb, db, nb = go base ~context in
    let path = [ Printf.sprintf "tpm after step %d" nb ] in
    let diags = ref (List.rev db) in
    let report d = diags := d :: !diags in
    if kb land elem_like = 0 && kb <> 0 then
      report
        (D.errorf ~path ~code:"sort/tpm-context"
           "pattern match applied from a context of kinds %s — tree patterns bind elements"
           (Format.asprintf "%a" pp_kinds kb));
    List.iter (fun d -> report (D.with_path (List.hd path) d)) (Pattern_check.check pg);
    (* result kinds: outputs reached over an attribute arc yield attributes,
       everything else yields elements *)
    let out =
      List.fold_left
        (fun acc v ->
          match Pg.parent pg v with
          | Some (_, Pg.Attribute) -> acc lor bit Attribute
          | _ -> acc lor bit Element)
        0 (Pg.outputs pg)
    in
    (out, List.rev !diags, nb)
  | Lp.Step (base, s) ->
    let kb, db, nb = go base ~context in
    let idx = nb + 1 in
    let path = [ Printf.sprintf "step %d (%s)" idx (step_label s) ] in
    let diags = ref (List.rev db) in
    let report d = diags := d :: !diags in
    let reached = axis_kinds kb s.Lp.axis in
    let result = reached land test_kinds s.Lp.axis s.Lp.test in
    if result = 0 && kb <> 0 then
      report
        (D.errorf ~path ~code:"sort/empty-step"
           "step can never produce a node: %s from a context of kinds %s" (step_label s)
           (Format.asprintf "%a" pp_kinds kb));
    (* predicates *)
    let value_preds =
      List.filter_map (function Lp.Value_pred p -> Some p | _ -> None) s.Lp.predicates
    in
    (match Pattern_check.contradiction value_preds with
    | None -> ()
    | Some msg ->
      let code =
        if
          List.exists
            (fun p ->
              match (p.Pg.comparison, p.Pg.literal) with Pg.Contains, Pg.Num _ -> true | _ -> false)
            value_preds
        then "sort/contains-num"
        else "sort/contradiction"
      in
      report (D.error ~path ~code msg));
    List.iteri
      (fun i p ->
        let ppath = path @ [ Printf.sprintf "predicate %d" (i + 1) ] in
        match (p : Lp.predicate) with
        | Lp.Position k ->
          if k <= 0 then
            report (D.errorf ~path:ppath ~code:"sort/position" "position predicate [%d] can never hold" k)
          else if k > 1 && singleton_axis s.Lp.axis then
            report
              (D.warningf ~path:ppath ~code:"sort/position-singleton"
                 "position [%d] on the singleton axis %s selects nothing" k
                 (Axis.to_string s.Lp.axis))
        | Lp.Value_pred _ -> ()
        | Lp.Exists sub ->
          let _, sub_diags, _ = go sub ~context:result in
          List.iter
            (fun d -> report (List.fold_right D.with_path ppath d))
            sub_diags)
      s.Lp.predicates;
    (result, List.rev !diags, idx)

let infer ?(context = any_node) plan =
  let k, diags, _ = go plan ~context in
  (Node_list k, diags)

(* --- schema-aware emptiness --------------------------------------------- *)

type nameset = Top | Names of SS.t

let names_of_list l = Names (SS.of_list l)
let names_opt = function Some l -> names_of_list l | None -> Top

let union_ns a b =
  match (a, b) with Top, _ | _, Top -> Top | Names x, Names y -> Names (SS.union x y)

(* Context of the schema walk: can the context be the virtual document
   node, and if it is an element, which names can it have. *)
type sctx = { at_doc : bool; elems : nameset }

let top_ctx = { at_doc = true; elems = Top }

let parents_of (_ : Schema_info.t) ctx =
  match ctx.elems with
  | Top -> None (* unknown: everything satisfiable *)
  | Names s -> Some (SS.elements s)

let schema_step schema ctx (s : Lp.step) ~path report =
  let unknown_name n ~attr =
    let exists = if attr then Schema_info.has_attribute schema n else Schema_info.has_element schema n in
    if not exists then begin
      report
        (D.warningf ~path ~code:"schema/unknown-name" "%s %s occurs nowhere in the workload schema"
           (if attr then "attribute" else "element")
           n);
      true
    end
    else false
  in
  match (s.Lp.axis, s.Lp.test) with
  | Axis.Attribute, Lp.Name n ->
    if not (unknown_name n ~attr:true) then begin
      match parents_of schema ctx with
      | None -> ()
      | Some parents ->
        if not (Schema_info.attribute_on schema ~parents n) then
          report
            (D.warningf ~path ~code:"schema/empty"
               "attribute @%s never occurs on the possible context elements (%s)" n
               (String.concat ", " parents))
    end;
    { at_doc = false; elems = Names SS.empty }
  | Axis.Child, Lp.Name n ->
    if unknown_name n ~attr:false then { at_doc = false; elems = Top }
    else begin
      (match parents_of schema ctx with
      | None -> ()
      | Some parents ->
        let root_ok = ctx.at_doc && List.mem n (Schema_info.roots schema) in
        if not (root_ok || Schema_info.child_of schema ~parents n) then
          report
            (D.warningf ~path ~code:"schema/empty"
               "element <%s> is never a child of the possible context elements (%s)" n
               (String.concat ", " parents)));
      { at_doc = false; elems = names_of_list [ n ] }
    end
  | (Axis.Descendant | Axis.Descendant_or_self), Lp.Name n ->
    if unknown_name n ~attr:false then { at_doc = false; elems = Top }
    else begin
      (match parents_of schema ctx with
      | None -> ()
      | Some parents ->
        let self_ok =
          s.Lp.axis = Axis.Descendant_or_self
          && match ctx.elems with Top -> true | Names es -> SS.mem n es
        in
        let root_ok =
          ctx.at_doc
          && (List.mem n (Schema_info.roots schema)
             || Schema_info.descendant_of schema ~parents:(Schema_info.roots schema) n)
        in
        if not (self_ok || root_ok || Schema_info.descendant_of schema ~parents n) then
          report
            (D.warningf ~path ~code:"schema/empty"
               "element <%s> never occurs below the possible context elements (%s)" n
               (String.concat ", " parents)));
      { at_doc = false; elems = names_of_list [ n ] }
    end
  | Axis.Self, Lp.Name n ->
    (match ctx.elems with
    | Names es when not (SS.mem n es) && not ctx.at_doc && not (SS.is_empty es) ->
      report
        (D.warningf ~path ~code:"schema/empty" "self::%s cannot hold here (context is %s)" n
           (String.concat ", " (SS.elements es)))
    | _ -> ());
    { at_doc = false; elems = names_of_list [ n ] }
  | Axis.Child, Lp.Any ->
    let elems =
      match parents_of schema ctx with
      | None -> Top
      | Some parents ->
        let base = Schema_info.all_children schema ~parents in
        if ctx.at_doc then union_ns (names_opt base) (names_of_list (Schema_info.roots schema))
        else names_opt base
    in
    { at_doc = false; elems }
  | (Axis.Descendant | Axis.Descendant_or_self), Lp.Any ->
    let elems =
      match parents_of schema ctx with
      | None -> Top
      | Some parents ->
        let below = names_opt (Schema_info.all_descendants schema ~parents) in
        let self = if s.Lp.axis = Axis.Descendant_or_self then ctx.elems else Names SS.empty in
        let roots =
          if ctx.at_doc then
            union_ns
              (names_of_list (Schema_info.roots schema))
              (names_opt (Schema_info.all_descendants schema ~parents:(Schema_info.roots schema)))
          else Names SS.empty
        in
        union_ns (union_ns below self) roots
    in
    { at_doc = false; elems }
  | _ ->
    (* upward, sideways, attribute wildcards, text() — give up precision
       rather than risk a false emptiness *)
    top_ctx

let rec schema_go schema plan ~ctx report =
  match (plan : Lp.t) with
  | Lp.Root -> ({ at_doc = true; elems = Names SS.empty }, 0)
  | Lp.Context -> (ctx, 0)
  | Lp.Union (a, b) ->
    let ca, _ = schema_go schema a ~ctx (fun d -> report (D.with_path "union left" d)) in
    let cb, _ = schema_go schema b ~ctx (fun d -> report (D.with_path "union right" d)) in
    ({ at_doc = ca.at_doc || cb.at_doc; elems = union_ns ca.elems cb.elems }, 0)
  | Lp.Step (base, s) ->
    let bctx, nb = schema_go schema base ~ctx report in
    let idx = nb + 1 in
    let path = [ Printf.sprintf "step %d (%s)" idx (step_label s) ] in
    let out = schema_step schema bctx s ~path report in
    List.iteri
      (fun i p ->
        match (p : Lp.predicate) with
        | Lp.Exists sub ->
          let ppath = path @ [ Printf.sprintf "predicate %d" (i + 1) ] in
          ignore
            (schema_go schema sub ~ctx:out (fun d -> report (List.fold_right D.with_path ppath d)))
        | Lp.Value_pred _ | Lp.Position _ -> ())
      s.Lp.predicates;
    (out, idx)
  | Lp.Tpm (base, pg) ->
    let bctx, nb = schema_go schema base ~ctx report in
    let path = [ Printf.sprintf "tpm after step %d" nb ] in
    (* walk the pattern graph top-down, tracking possible names per vertex *)
    let n = Pg.vertex_count pg in
    let vertex_ctx = Array.make (max 1 n) top_ctx in
    vertex_ctx.(0) <- bctx;
    let out_ctx = ref { at_doc = false; elems = Names SS.empty } in
    List.iter
      (fun v ->
        if v <> 0 then begin
          match Pg.parent pg v with
          | None -> ()
          | Some (p, rel) ->
            let vx = Pg.vertex pg v in
            let axis =
              match rel with
              | Pg.Child -> Axis.Child
              | Pg.Descendant -> Axis.Descendant
              | Pg.Attribute -> Axis.Attribute
              | Pg.Following_sibling -> Axis.Following_sibling
            in
            let test =
              match vx.Pg.label with Pg.Tag name -> Lp.Name name | Pg.Wildcard -> Lp.Any
            in
            let vpath = path @ [ Printf.sprintf "vertex %d" v ] in
            let out =
              schema_step schema vertex_ctx.(p)
                { Lp.axis; test; predicates = [] }
                ~path:vpath report
            in
            vertex_ctx.(v) <- out;
            if vx.Pg.output then
              out_ctx := { at_doc = false; elems = union_ns !out_ctx.elems out.elems }
        end)
      (Pg.vertices_in_document_order pg);
    (!out_ctx, nb)

let check ?(context = any_node) ?schema plan =
  let _, diags = infer ~context plan in
  match schema with
  | None -> diags
  | Some schema ->
    let acc = ref [] in
    let start =
      {
        at_doc = context land bit Doc_node <> 0;
        elems = (if context land bit Element <> 0 then Top else Names SS.empty);
      }
    in
    ignore (schema_go schema plan ~ctx:start (fun d -> acc := d :: !acc));
    diags @ List.rev !acc
