(** Offline integrity checking ("fsck") for serialized [.xqdb] stores.

    {!Xqp_storage.Store_io.load} fails loudly on the {e first} problem it
    meets; this pass instead validates a store file {e statically} —
    without executing any query or even materializing the store — and
    reports {e every} finding, so a corrupted file can be diagnosed in one
    run. Checked, section by section (format v3):

    - header: magic, version, field sanity, and the section layout summing
      to the file size ([layout/*]);
    - structure bits: balanced-parentheses excess discipline — the excess
      never goes negative, ends at zero, opens at position 0, and the
      population count matches the node count ([structure/*]);
    - the serialized {!Xqp_storage.Excess_dir} block directory against a
      fresh scan of the structure bytes ([directory/mismatch]);
    - tag sequence: every tag id within the symbol table ([tags/*]);
    - has-content bits: population count equals the content count, and the
      serialized rank samples match recomputed ranks ([flags/*]);
    - symbol and content offset directories: monotone and closing exactly
      on their blobs ([symbols/offsets], [contents/offsets]);
    - content-store samples: evenly sampled content ids address valid blob
      slices and map back to in-range pre-order nodes ([contents/sample]);
    - a content B+-tree rebuilt from the (valid) content sections passes
      {!Xqp_storage.Btree.check_invariants} — key ordering, occupancy,
      leaf chaining ([index/btree]).

    Corpus catalogs ([.xqdbc], {!Xqp_storage.Catalog}) get their own
    pass ([corpus/*] codes): the manifest parses ([corpus/catalog]);
    every shard file exists ([corpus/shard-missing]), has a valid
    container header and doc table ([corpus/shard-container]), and
    holds exactly the documents the catalog lists ([corpus/shard-count],
    [corpus/doc-bounds]); every packed document image passes the full
    single-store check above (diagnostics prefixed with shard/doc);
    and the summary algebra the planner trusts holds — each shard
    summary is the merge of its documents' packed summaries
    ([corpus/shard-summary]), the merged summary is the merge of the
    shard summaries ([corpus/merged-mismatch]), and the merged stats
    version dominates every shard's ([corpus/stats-version]). *)

val check_bytes : string -> Diagnostic.t list
(** Validate an in-memory image of a store file (the unit tests corrupt
    images without touching disk). *)

val check_catalog : path:string -> string -> Diagnostic.t list
(** Validate a corpus catalog from its manifest bytes; [path] locates
    the shard files (they live next to the catalog). *)

val fsck : string -> Diagnostic.t list
(** [fsck path] reads the file and runs {!check_bytes} — or
    {!check_catalog} when the path or magic marks a corpus catalog.
    I/O failures become an [io/unreadable] error. A store written by
    {!Xqp_storage.Store_io.save} or a catalog written by
    {!Xqp_storage.Catalog.pack} yields [[]]. *)
