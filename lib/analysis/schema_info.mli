(** Element-structure summaries for schema-aware emptiness analysis.

    A summary records which element names occur, which parent→child element
    edges exist, which attributes each element carries, and which element
    names can be the document root. {!Plan_check} propagates sets of
    possible context names through a plan against a summary and flags name
    tests that are unsatisfiable — the static counterpart of the paper's
    schema-tree-guided construction (§3.2).

    Summaries come from two sources: a constructor {!Xqp_algebra.Schema_tree}
    (the shapes XQuery return clauses build) or a document instance (the
    workload generators' output). Elements whose content is not statically
    known (schema placeholders / components) are {e open}: anything may
    appear below them, so the analysis never reports a false emptiness. *)

type t

val empty : t

val of_schema_tree : Xqp_algebra.Schema_tree.t -> t
(** Summarize a constructor schema. [Placeholder] and [From_component]
    positions make the enclosing element open. *)

val of_document : Xqp_xml.Document.t -> t
(** Summarize a document instance (exact: no open elements). *)

val merge : t -> t -> t
(** Union of two summaries (e.g. the auction and bib workload shapes). *)

val has_element : t -> string -> bool
val has_attribute : t -> string -> bool
(** The attribute name occurs on some element. *)

val roots : t -> string list

val children_of : t -> string -> string list option
(** Child element names of the given element; [None] when the element is
    open (statically unknown content). *)

val attributes_of : t -> string -> string list option

val descendant_of : t -> parents:string list -> string -> bool
(** Can an element with the given name appear strictly below {e some}
    element in [parents]? Openness propagates: below an open element
    everything is reachable. *)

val child_of : t -> parents:string list -> string -> bool
val attribute_on : t -> parents:string list -> string -> bool

val all_children : t -> parents:string list -> string list option
(** All possible child element names below [parents]; [None] = unbounded. *)

val all_descendants : t -> parents:string list -> string list option

val element_count : t -> int
val pp : Format.formatter -> t -> unit
