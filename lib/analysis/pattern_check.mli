(** Static validation of pattern graphs (§3.1's PatternGraph sort).

    {!Xqp_algebra.Pattern_graph.make} enforces some invariants at
    construction time by raising; this validator re-establishes them
    {e independently} over the accessor interface and reports {e all}
    violations as structured diagnostics — the form the optimizer
    instrumentation ({!Lint.verified_optimize}) and [xqp lint] need.

    Checked invariants:
    - at least one vertex and exactly one output vertex, which is not the
      context vertex 0 ([pattern/output]);
    - every arc's endpoints are in range, no arc enters the context vertex,
      and no vertex has two parents ([pattern/arc]);
    - spine connectivity and acyclicity: every vertex reaches the context
      vertex by climbing parent arcs ([pattern/disconnected],
      [pattern/cycle]);
    - the adjacency views agree with the arc list ([pattern/adjacency]);
    - a vertex reached over an [Attribute] arc is a leaf — attributes have
      no children ([pattern/attr-internal]) — and carries no [Wildcard]-
      incompatible structure;
    - no vertex carries contradictory value predicates
      ([pattern/contradiction]) or a [contains] with a numeric literal
      ([pattern/contains-num]). *)

val check : Xqp_algebra.Pattern_graph.t -> Diagnostic.t list
(** All violations found; [[]] iff the pattern is well-formed. *)

val contradiction : Xqp_algebra.Pattern_graph.predicate list -> string option
(** [Some message] when the conjunction of value predicates is
    unsatisfiable for every node value: disjoint numeric or string
    intervals, [=]/[!=] clashes, a string equality whose witness fails the
    numeric constraints, or [contains] applied to a number. Conservative —
    [None] means "not provably empty". Shared with {!Plan_check}. *)
