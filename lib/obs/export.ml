let value_to_string = function
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Printf.sprintf "%g" f
  | Trace.Str s -> s
  | Trace.Bool b -> string_of_bool b

(* --- profile tree ------------------------------------------------------ *)

let pp_profile_tree ppf events =
  List.iter
    (fun (e : Trace.event) ->
      let attrs =
        String.concat " "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_to_string v)) e.Trace.attrs)
      in
      Format.fprintf ppf "%10.3fms  %s%s%s%s@."
        (Trace.duration_us e /. 1000.0)
        (String.make (2 * e.Trace.depth) ' ')
        e.Trace.name
        (if attrs = "" then "" else "  ")
        attrs)
    events

(* --- Chrome trace_event ------------------------------------------------ *)

let value_to_json = function
  | Trace.Int i -> Json.Num (float_of_int i)
  | Trace.Float f -> Json.Num f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let json_to_value = function
  | Json.Num f -> if Float.is_integer f then Trace.Int (int_of_float f) else Trace.Float f
  | Json.Str s -> Trace.Str s
  | Json.Bool b -> Trace.Bool b
  | Json.Null | Json.Arr _ | Json.Obj _ -> Trace.Str "?"

let to_chrome_json ?(process_name = "xqp") events =
  let metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  (* Json prints non-integer numbers with %.3f, i.e. a millinanosecond
     grid for microsecond timestamps. Quantize both span endpoints onto
     that grid before deriving [dur], so ts and ts+dur survive the
     serialize/parse round-trip exactly: a child interval nested inside
     its parent stays nested after re-import (rounding ts and dur
     independently could push a child's end past its parent's by 1-2 ns). *)
  let quantize us = Float.round (us *. 1e3) /. 1e3 in
  let of_event (e : Trace.event) =
    let ts = quantize (e.Trace.t0 *. 1e6) in
    let dur = quantize (e.Trace.t1 *. 1e6) -. ts in
    Json.Obj
      [
        ("name", Json.Str e.Trace.name);
        ("cat", Json.Str "xqp");
        ("ph", Json.Str "X");
        ("ts", Json.Num ts);
        ("dur", Json.Num dur);
        ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ( "args",
          Json.Obj
            ([
               ("span_id", Json.Num (float_of_int e.Trace.id));
               ("span_parent", Json.Num (float_of_int e.Trace.parent));
               ("span_depth", Json.Num (float_of_int e.Trace.depth));
             ]
            @ List.map (fun (k, v) -> (k, value_to_json v)) e.Trace.attrs) );
      ]
  in
  Json.to_string ~pretty:true
    (Json.Obj
       [
         ("traceEvents", Json.Arr (metadata :: List.map of_event events));
         ("displayTimeUnit", Json.Str "ms");
       ])

let of_chrome_json text =
  let root = Json.parse text in
  let entries =
    match Option.bind (Json.member "traceEvents" root) Json.to_arr with
    | Some entries -> entries
    | None -> failwith "Export.of_chrome_json: no traceEvents array"
  in
  let field name entry = Json.member name entry in
  let num name entry =
    match Option.bind (field name entry) Json.to_num with
    | Some f -> f
    | None -> failwith (Printf.sprintf "Export.of_chrome_json: missing numeric %s" name)
  in
  let events =
    List.filter_map
      (fun entry ->
        match Option.bind (field "ph" entry) Json.to_str with
        | Some "X" ->
          let name =
            match Option.bind (field "name" entry) Json.to_str with
            | Some n -> n
            | None -> failwith "Export.of_chrome_json: event without a name"
          in
          let ts = num "ts" entry and dur = num "dur" entry in
          let args = match field "args" entry with Some (Json.Obj fields) -> fields | _ -> [] in
          let arg_num key fallback =
            match List.assoc_opt key args with
            | Some (Json.Num f) -> int_of_float f
            | _ -> fallback
          in
          let attrs =
            List.filter_map
              (fun (k, v) ->
                match k with
                | "span_id" | "span_parent" | "span_depth" -> None
                | _ -> Some (k, json_to_value v))
              args
          in
          Some
            {
              Trace.id = arg_num "span_id" 0;
              parent = arg_num "span_parent" (-1);
              depth = arg_num "span_depth" 0;
              name;
              t0 = ts /. 1e6;
              t1 = (ts +. dur) /. 1e6;
              attrs;
            }
        | _ -> None)
      entries
  in
  List.sort (fun (a : Trace.event) b -> compare a.Trace.id b.Trace.id) events

(* --- TSV --------------------------------------------------------------- *)

let to_tsv events =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "id\tparent\tdepth\tname\tstart_us\tdur_us\tattrs\n";
  List.iter
    (fun (e : Trace.event) ->
      let attrs =
        String.concat ";"
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_to_string v)) e.Trace.attrs)
      in
      Buffer.add_string buf
        (Printf.sprintf "%d\t%d\t%d\t%s\t%.1f\t%.1f\t%s\n" e.Trace.id e.Trace.parent
           e.Trace.depth e.Trace.name (e.Trace.t0 *. 1e6) (Trace.duration_us e) attrs))
    events;
  Buffer.contents buf

(* --- Prometheus text exposition ----------------------------------------- *)

(* The scrape endpoint of `xqp serve`. Metric names keep only
   [a-zA-Z0-9_:]; the registry's dots become underscores, so
   [pager.logical_reads] scrapes as [xqp_pager_logical_reads]. Counters
   gain the conventional [_total] suffix; histograms emit cumulative
   [le]-labelled buckets plus [_sum] and [_count]. Output order follows
   [Metrics.snapshot] (sorted by name), so scrapes are deterministic. *)

let prometheus_name ns name =
  let b = Buffer.create (String.length ns + String.length name + 1) in
  if ns <> "" then begin
    Buffer.add_string b ns;
    Buffer.add_char b '_'
  end;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prometheus_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_prometheus ?(namespace = "xqp") metrics =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, reading) ->
      let pname = prometheus_name namespace name in
      (* Scrapers warn on a TYPE without a HELP; the registry carries no
         prose, so describe the metric by its registered dotted name. *)
      match (reading : Metrics.reading) with
      | Metrics.Counter_v v ->
        line "# HELP %s_total Counter %s from the xqp metrics registry." pname name;
        line "# TYPE %s_total counter" pname;
        line "%s_total %d" pname v
      | Metrics.Gauge_v v ->
        line "# HELP %s Gauge %s from the xqp metrics registry." pname name;
        line "# TYPE %s gauge" pname;
        line "%s %s" pname (prometheus_num v)
      | Metrics.Histogram_v h ->
        line "# HELP %s Histogram %s from the xqp metrics registry." pname name;
        line "# TYPE %s histogram" pname;
        let cumulative = ref 0 in
        List.iter
          (fun (upper, count) ->
            cumulative := !cumulative + count;
            line "%s_bucket{le=\"%s\"} %d" pname (prometheus_num upper) !cumulative)
          h.Metrics.buckets;
        line "%s_bucket{le=\"+Inf\"} %d" pname h.Metrics.count;
        line "%s_sum %s" pname (prometheus_num h.Metrics.sum);
        line "%s_count %d" pname h.Metrics.count)
    (Metrics.snapshot metrics);
  Buffer.contents buf
