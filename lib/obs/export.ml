let value_to_string = function
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Printf.sprintf "%g" f
  | Trace.Str s -> s
  | Trace.Bool b -> string_of_bool b

(* --- profile tree ------------------------------------------------------ *)

let pp_profile_tree ppf events =
  List.iter
    (fun (e : Trace.event) ->
      let attrs =
        String.concat " "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_to_string v)) e.Trace.attrs)
      in
      Format.fprintf ppf "%10.3fms  %s%s%s%s@."
        (Trace.duration_us e /. 1000.0)
        (String.make (2 * e.Trace.depth) ' ')
        e.Trace.name
        (if attrs = "" then "" else "  ")
        attrs)
    events

(* --- Chrome trace_event ------------------------------------------------ *)

let value_to_json = function
  | Trace.Int i -> Json.Num (float_of_int i)
  | Trace.Float f -> Json.Num f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let json_to_value = function
  | Json.Num f -> if Float.is_integer f then Trace.Int (int_of_float f) else Trace.Float f
  | Json.Str s -> Trace.Str s
  | Json.Bool b -> Trace.Bool b
  | Json.Null | Json.Arr _ | Json.Obj _ -> Trace.Str "?"

let to_chrome_json ?(process_name = "xqp") events =
  let metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  let of_event (e : Trace.event) =
    Json.Obj
      [
        ("name", Json.Str e.Trace.name);
        ("cat", Json.Str "xqp");
        ("ph", Json.Str "X");
        ("ts", Json.Num (e.Trace.t0 *. 1e6));
        ("dur", Json.Num (Trace.duration_us e));
        ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ( "args",
          Json.Obj
            ([
               ("span_id", Json.Num (float_of_int e.Trace.id));
               ("span_parent", Json.Num (float_of_int e.Trace.parent));
               ("span_depth", Json.Num (float_of_int e.Trace.depth));
             ]
            @ List.map (fun (k, v) -> (k, value_to_json v)) e.Trace.attrs) );
      ]
  in
  Json.to_string ~pretty:true
    (Json.Obj
       [
         ("traceEvents", Json.Arr (metadata :: List.map of_event events));
         ("displayTimeUnit", Json.Str "ms");
       ])

let of_chrome_json text =
  let root = Json.parse text in
  let entries =
    match Option.bind (Json.member "traceEvents" root) Json.to_arr with
    | Some entries -> entries
    | None -> failwith "Export.of_chrome_json: no traceEvents array"
  in
  let field name entry = Json.member name entry in
  let num name entry =
    match Option.bind (field name entry) Json.to_num with
    | Some f -> f
    | None -> failwith (Printf.sprintf "Export.of_chrome_json: missing numeric %s" name)
  in
  let events =
    List.filter_map
      (fun entry ->
        match Option.bind (field "ph" entry) Json.to_str with
        | Some "X" ->
          let name =
            match Option.bind (field "name" entry) Json.to_str with
            | Some n -> n
            | None -> failwith "Export.of_chrome_json: event without a name"
          in
          let ts = num "ts" entry and dur = num "dur" entry in
          let args = match field "args" entry with Some (Json.Obj fields) -> fields | _ -> [] in
          let arg_num key fallback =
            match List.assoc_opt key args with
            | Some (Json.Num f) -> int_of_float f
            | _ -> fallback
          in
          let attrs =
            List.filter_map
              (fun (k, v) ->
                match k with
                | "span_id" | "span_parent" | "span_depth" -> None
                | _ -> Some (k, json_to_value v))
              args
          in
          Some
            {
              Trace.id = arg_num "span_id" 0;
              parent = arg_num "span_parent" (-1);
              depth = arg_num "span_depth" 0;
              name;
              t0 = ts /. 1e6;
              t1 = (ts +. dur) /. 1e6;
              attrs;
            }
        | _ -> None)
      entries
  in
  List.sort (fun (a : Trace.event) b -> compare a.Trace.id b.Trace.id) events

(* --- TSV --------------------------------------------------------------- *)

let to_tsv events =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "id\tparent\tdepth\tname\tstart_us\tdur_us\tattrs\n";
  List.iter
    (fun (e : Trace.event) ->
      let attrs =
        String.concat ";"
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_to_string v)) e.Trace.attrs)
      in
      Buffer.add_string buf
        (Printf.sprintf "%d\t%d\t%d\t%s\t%.1f\t%.1f\t%s\n" e.Trace.id e.Trace.parent
           e.Trace.depth e.Trace.name (e.Trace.t0 *. 1e6) (Trace.duration_us e) attrs))
    events;
  Buffer.contents buf
