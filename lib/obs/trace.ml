type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

type event = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  t0 : float;
  t1 : float;
  attrs : attr list;
}

type span = {
  s_id : int;
  s_parent : int;
  s_depth : int;
  s_name : string;
  s_t0 : float;
  mutable s_attrs : attr list;
  s_real : bool;
}

type t = {
  mutable on : bool;
  mutable epoch : float;
  capacity : int;
  ring : event option array;
  mutable head : int;  (* next write slot *)
  mutable count : int; (* valid entries, <= capacity *)
  mutable lost : int;
  mutable next_id : int;
  mutable stack : span list;
}

let null_span =
  { s_id = -1; s_parent = -1; s_depth = 0; s_name = ""; s_t0 = 0.0; s_attrs = []; s_real = false }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  {
    on = false;
    epoch = Unix.gettimeofday ();
    capacity;
    ring = Array.make capacity None;
    head = 0;
    count = 0;
    lost = 0;
    next_id = 0;
    stack = [];
  }

let default = create ()

let set_enabled t flag = t.on <- flag
let enabled t = t.on

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.head <- 0;
  t.count <- 0;
  t.lost <- 0;
  t.next_id <- 0;
  t.stack <- [];
  t.epoch <- Unix.gettimeofday ()

let now t = Unix.gettimeofday () -. t.epoch

let start t ?(attrs = []) name =
  if not t.on then null_span
  else begin
    let parent, depth =
      match t.stack with [] -> (-1, 0) | top :: _ -> (top.s_id, top.s_depth + 1)
    in
    let span =
      {
        s_id = t.next_id;
        s_parent = parent;
        s_depth = depth;
        s_name = name;
        s_t0 = now t;
        s_attrs = attrs;
        s_real = true;
      }
    in
    t.next_id <- t.next_id + 1;
    t.stack <- span :: t.stack;
    span
  end

let add_attrs span attrs = if span.s_real then span.s_attrs <- span.s_attrs @ attrs

(* Ring overflow is silent by design (oldest events drop first); surface
   the loss in /metrics so operators can size the ring. Per-tracer counts
   stay queryable through [dropped]. *)
let m_dropped = Metrics.counter Metrics.default "trace.dropped"

let record t span t1 =
  let event =
    {
      id = span.s_id;
      parent = span.s_parent;
      depth = span.s_depth;
      name = span.s_name;
      t0 = span.s_t0;
      t1;
      attrs = span.s_attrs;
    }
  in
  if t.count = t.capacity then begin
    t.lost <- t.lost + 1;
    Metrics.incr m_dropped
  end
  else t.count <- t.count + 1;
  t.ring.(t.head) <- Some event;
  t.head <- (t.head + 1) mod t.capacity

let finish t span =
  if span.s_real then begin
    let t1 = now t in
    (* close any spans opened inside [span] that were never finished, so
       the recorded intervals always balance *)
    let rec pop = function
      | [] -> [] (* span not on the stack (tracer cleared meanwhile): drop *)
      | top :: rest ->
        if top.s_id = span.s_id then begin
          record t top t1;
          rest
        end
        else begin
          record t top t1;
          pop rest
        end
    in
    t.stack <- pop t.stack
  end

let with_span t ?attrs name f =
  if not t.on then f null_span
  else begin
    let span = start t ?attrs name in
    match f span with
    | result ->
      finish t span;
      result
    | exception e ->
      finish t span;
      raise e
  end

let events t =
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    match t.ring.(i) with Some e -> out := e :: !out | None -> ()
  done;
  List.sort (fun a b -> compare a.id b.id) !out

let dropped t = t.lost

let attr event key = List.assoc_opt key event.attrs

let attr_int event key =
  match attr event key with Some (Int i) -> Some i | _ -> None

let attr_str event key =
  match attr event key with Some (Str s) -> Some s | _ -> None

let duration_us event = (event.t1 -. event.t0) *. 1e6
