(* Query flight recorder: sharded per-fingerprint accumulators plus a
   bounded slow-query ring. See the interface for the design notes. *)

type sample = {
  fingerprint : string;
  query : string;
  mode : string;
  latency_ms : float;
  rows : int;
  pages_read : int;
  cache_hit : bool;
  deadline_missed : bool;
  failed : bool;
  worst_q_error : float;
}

type stat = {
  st_fingerprint : string;
  st_query : string;
  st_mode : string;
  st_count : int;
  st_errors : int;
  st_total_ms : float;
  st_max_ms : float;
  st_p50_ms : float;
  st_p99_ms : float;
  st_rows : int;
  st_pages_read : int;
  st_cache_hits : int;
  st_deadline_misses : int;
  st_worst_q_error : float;
}

type op_profile = {
  op_path : string;
  op_label : string;
  op_engine : string option;
  op_est_rows : float;
  op_actual_rows : int;
  op_ms : float;
}

type capture = {
  cap_request_id : string;
  cap_sample : sample;
  cap_plan : string;
  cap_ops : op_profile list;
  cap_events : Trace.event list;
  cap_wall : float;
}

(* Latency histogram: the same 64 log2 buckets as Metrics histograms —
   bucket 0 holds samples <= 1ms, bucket i holds (2^(i-1), 2^i]. *)
let n_buckets = 64

let bucket_index v =
  if v <= 1.0 then 0
  else min (n_buckets - 1) (1 + int_of_float (Float.log2 v))

let bucket_bound i = if i = 0 then 1.0 else Float.pow 2.0 (float_of_int i)

type entry = {
  e_fingerprint : string;
  e_query : string;
  e_mode : string;
  mutable e_count : int;
  mutable e_errors : int;
  mutable e_total_ms : float;
  mutable e_max_ms : float;
  e_buckets : int array;
  mutable e_rows : int;
  mutable e_pages : int;
  mutable e_cache_hits : int;
  mutable e_deadline_misses : int;
  mutable e_worst_q : float;
}

type shard = {
  s_guard : Dsan.guard;
  s_table : (string, entry) Hashtbl.t;
}

type ring = {
  r_guard : Dsan.guard;
  r_slots : capture option array;
  mutable r_head : int;  (* next write position *)
  mutable r_count : int;
}

type t = {
  on : bool Atomic.t;
  shards : shard array;
  capacity : int;  (* max distinct fingerprints per shard *)
  refused : int Atomic.t;
  ring : ring;
}

let create ?(shards = 8) ?(capacity = 512) ?(slow_capacity = 64) () =
  let shards = max 1 shards in
  {
    on = Atomic.make true;
    shards =
      Array.init shards (fun i ->
          {
            s_guard = Dsan.guard (Printf.sprintf "Flight_recorder shard %d" i);
            s_table = Hashtbl.create 64;
          });
    capacity = max 1 capacity;
    refused = Atomic.make 0;
    ring =
      {
        r_guard = Dsan.guard "Flight_recorder slow ring";
        r_slots = Array.make (max 1 slow_capacity) None;
        r_head = 0;
        r_count = 0;
      };
  }

let default = create ()
let set_enabled t on = Atomic.set t.on on
let enabled t = Atomic.get t.on
let dropped t = Atomic.get t.refused

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let record t s =
  if Atomic.get t.on then begin
    let shard = shard_of t s.fingerprint in
    Dsan.with_guard shard.s_guard (fun () ->
        match Hashtbl.find_opt shard.s_table s.fingerprint with
        | None when Hashtbl.length shard.s_table >= t.capacity ->
          Atomic.incr t.refused
        | found ->
          let e =
            match found with
            | Some e -> e
            | None ->
              let e =
                {
                  e_fingerprint = s.fingerprint;
                  e_query = s.query;
                  e_mode = s.mode;
                  e_count = 0;
                  e_errors = 0;
                  e_total_ms = 0.0;
                  e_max_ms = 0.0;
                  e_buckets = Array.make n_buckets 0;
                  e_rows = 0;
                  e_pages = 0;
                  e_cache_hits = 0;
                  e_deadline_misses = 0;
                  e_worst_q = 1.0;
                }
              in
              Hashtbl.add shard.s_table s.fingerprint e;
              e
          in
          e.e_count <- e.e_count + 1;
          if s.failed then e.e_errors <- e.e_errors + 1;
          e.e_total_ms <- e.e_total_ms +. s.latency_ms;
          if s.latency_ms > e.e_max_ms then e.e_max_ms <- s.latency_ms;
          let b = bucket_index s.latency_ms in
          e.e_buckets.(b) <- e.e_buckets.(b) + 1;
          e.e_rows <- e.e_rows + s.rows;
          e.e_pages <- e.e_pages + s.pages_read;
          if s.cache_hit then e.e_cache_hits <- e.e_cache_hits + 1;
          if s.deadline_missed then
            e.e_deadline_misses <- e.e_deadline_misses + 1;
          if s.worst_q_error > e.e_worst_q then e.e_worst_q <- s.worst_q_error)
  end

let capture t c =
  if Atomic.get t.on then begin
    let r = t.ring in
    Dsan.with_guard r.r_guard (fun () ->
        r.r_slots.(r.r_head) <- Some c;
        r.r_head <- (r.r_head + 1) mod Array.length r.r_slots;
        if r.r_count < Array.length r.r_slots then r.r_count <- r.r_count + 1)
  end

(* Approximate percentile: smallest bucket whose cumulative count
   reaches q * total, reported as that bucket's upper bound. *)
let percentile buckets total q =
  if total = 0 then 0.0
  else begin
    let want = int_of_float (ceil (q *. float_of_int total)) in
    let want = max 1 want in
    let acc = ref 0 and result = ref (bucket_bound (n_buckets - 1)) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + buckets.(i);
         if !acc >= want then begin
           result := bucket_bound i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let stat_of_entry e =
  {
    st_fingerprint = e.e_fingerprint;
    st_query = e.e_query;
    st_mode = e.e_mode;
    st_count = e.e_count;
    st_errors = e.e_errors;
    st_total_ms = e.e_total_ms;
    st_max_ms = e.e_max_ms;
    st_p50_ms = percentile e.e_buckets e.e_count 0.50;
    st_p99_ms = percentile e.e_buckets e.e_count 0.99;
    st_rows = e.e_rows;
    st_pages_read = e.e_pages;
    st_cache_hits = e.e_cache_hits;
    st_deadline_misses = e.e_deadline_misses;
    st_worst_q_error = e.e_worst_q;
  }

let stats t =
  Array.fold_left
    (fun acc shard ->
      Dsan.with_guard shard.s_guard (fun () ->
          Hashtbl.fold (fun _ e acc -> stat_of_entry e :: acc) shard.s_table acc))
    [] t.shards

let key_of by st =
  match by with
  | `Total_ms -> st.st_total_ms
  | `Count -> float_of_int st.st_count
  | `Max_ms -> st.st_max_ms
  | `Q_error -> st.st_worst_q_error

let top ?(k = 20) ~by t =
  let all = stats t in
  let sorted =
    List.sort
      (fun a b ->
        match compare (key_of by b) (key_of by a) with
        | 0 -> compare a.st_fingerprint b.st_fingerprint
        | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted

let by_of_string = function
  | "total_ms" -> Some `Total_ms
  | "count" -> Some `Count
  | "max_ms" -> Some `Max_ms
  | "q_error" -> Some `Q_error
  | _ -> None

let slow t =
  let r = t.ring in
  Dsan.with_guard r.r_guard (fun () ->
      let n = Array.length r.r_slots in
      let out = ref [] in
      (* oldest → newest, then reverse: most recent first *)
      for i = 0 to r.r_count - 1 do
        let idx = (r.r_head - r.r_count + i + (2 * n)) mod n in
        match r.r_slots.(idx) with
        | Some c -> out := c :: !out
        | None -> ()
      done;
      !out)

let reset t =
  Array.iter
    (fun shard ->
      Dsan.with_guard shard.s_guard (fun () -> Hashtbl.reset shard.s_table))
    t.shards;
  Atomic.set t.refused 0;
  let r = t.ring in
  Dsan.with_guard r.r_guard (fun () ->
      Array.fill r.r_slots 0 (Array.length r.r_slots) None;
      r.r_head <- 0;
      r.r_count <- 0)

(* --- JSON ---------------------------------------------------------------- *)

let round3 x = Float.round (x *. 1000.0) /. 1000.0

let stat_to_json st =
  Json.Obj
    [
      ("fingerprint", Json.Str st.st_fingerprint);
      ("query", Json.Str st.st_query);
      ("mode", Json.Str st.st_mode);
      ("count", Json.Num (float_of_int st.st_count));
      ("errors", Json.Num (float_of_int st.st_errors));
      ("total_ms", Json.Num (round3 st.st_total_ms));
      ("max_ms", Json.Num (round3 st.st_max_ms));
      ("p50_ms", Json.Num (round3 st.st_p50_ms));
      ("p99_ms", Json.Num (round3 st.st_p99_ms));
      ("rows", Json.Num (float_of_int st.st_rows));
      ("pages_read", Json.Num (float_of_int st.st_pages_read));
      ("cache_hits", Json.Num (float_of_int st.st_cache_hits));
      ("deadline_misses", Json.Num (float_of_int st.st_deadline_misses));
      ("worst_q_error", Json.Num (round3 st.st_worst_q_error));
    ]

let op_to_json op =
  Json.Obj
    [
      ("path", Json.Str op.op_path);
      ("op", Json.Str op.op_label);
      ( "engine",
        match op.op_engine with Some e -> Json.Str e | None -> Json.Null );
      ("est_rows", Json.Num (round3 op.op_est_rows));
      ("actual_rows", Json.Num (float_of_int op.op_actual_rows));
      ("ms", Json.Num (round3 op.op_ms));
    ]

let capture_to_json c =
  Json.Obj
    [
      ("request_id", Json.Str c.cap_request_id);
      ("query", Json.Str c.cap_sample.query);
      ("mode", Json.Str c.cap_sample.mode);
      ("fingerprint", Json.Str c.cap_sample.fingerprint);
      ("latency_ms", Json.Num (round3 c.cap_sample.latency_ms));
      ("rows", Json.Num (float_of_int c.cap_sample.rows));
      ("pages_read", Json.Num (float_of_int c.cap_sample.pages_read));
      ("cache_hit", Json.Bool c.cap_sample.cache_hit);
      ("deadline_missed", Json.Bool c.cap_sample.deadline_missed);
      ("failed", Json.Bool c.cap_sample.failed);
      ("worst_q_error", Json.Num (round3 c.cap_sample.worst_q_error));
      ("plan", Json.Str c.cap_plan);
      ("operators", Json.Arr (List.map op_to_json c.cap_ops));
      ("trace_spans", Json.Num (float_of_int (List.length c.cap_events)));
      ("wall_time", Json.Num c.cap_wall);
    ]
