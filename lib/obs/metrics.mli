(** Unified metrics: named counters, gauges and histograms in a registry.

    This replaces the scattered per-module stats records ([Pager.stats],
    [Buffer_pool.stats], the [*_with_stats] engine variants) behind one
    interface: each layer registers its metrics by name in
    {!default} and bumps them unconditionally — an increment on a mutable
    int field, cheap enough to stay always-on — and consumers (the
    [--analyze] profiler, the bench harness, [xqp explain]) read values or
    take whole snapshots.

    Naming convention (documented in DESIGN.md §7):
    [<layer>.<component>.<quantity>], e.g. [pager.logical_reads],
    [pool.page_faults], [engine.nok.nodes_visited].

    Domain safety (DESIGN.md §11): counters and gauges are [Atomic.t]
    values — increments from concurrent domains are never lost;
    histograms serialize observations behind their own mutex; the
    registry table itself is guarded, so get-or-create races return the
    same handle. Snapshots are sorted by name and therefore
    deterministic regardless of registration order. *)

type t
(** A registry. *)

val create : unit -> t
val default : t
(** The process-wide registry every built-in layer emits into. *)

(** {2 Counters} — monotone ints, resettable. *)

type counter

val counter : t -> string -> counter
(** Get or create. @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {2 Gauges} — last-write-wins floats. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} — log2-bucketed distributions. *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit
(** Record one sample (negative samples land in the first bucket). *)

type histogram_summary = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
  buckets : (float * int) list;
      (** Non-empty buckets as (inclusive upper bound, count). *)
}

val summary : histogram -> histogram_summary

(** {2 Registry-wide views} *)

type reading =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_summary

val snapshot : t -> (string * reading) list
(** Every registered metric, sorted by name. *)

val find : t -> string -> reading option

val reset : t -> unit
(** Zero every metric; registrations (and handles) stay valid. *)

val pp : Format.formatter -> t -> unit
(** One line per metric, sorted by name. *)

val to_tsv : t -> string
(** [name<TAB>kind<TAB>value] lines (histograms report
    count/sum/min/max). *)
