exception Violation of string

let on =
  Atomic.make
    (match Sys.getenv_opt "XQP_DSAN" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let enabled () = Atomic.get on
let set_enabled flag = Atomic.set on flag

let self_id () = (Domain.self () :> int)

(* --- owner stamps ------------------------------------------------------ *)

(* The stamp is an int Atomic: -1 = unclaimed. Claiming races only matter
   when two domains touch an unclaimed structure at the same instant —
   compare_and_set makes exactly one of them win, the other reports the
   violation it just proved. *)
type owner = { what : string; stamp : int Atomic.t }

let unclaimed = -1

let owner what = { what; stamp = Atomic.make unclaimed }

let assert_owner o =
  if Atomic.get on then begin
    let self = self_id () in
    let current = Atomic.get o.stamp in
    if current = self then ()
    else if current = unclaimed && Atomic.compare_and_set o.stamp unclaimed self then ()
    else
      raise
        (Violation
           (Printf.sprintf "%s is domain-local to domain %d but was touched from domain %d"
              o.what (Atomic.get o.stamp) self))
  end

let release_owner o = Atomic.set o.stamp unclaimed

(* --- guards ------------------------------------------------------------ *)

(* [holder] is only written while [mutex] is held, so a matching read
   from the holding domain always sees its own id; a non-holder reads
   either -1 or some other domain's id — both fail the assertion, which
   is exactly right. *)
type guard = { g_what : string; mutex : Mutex.t; mutable holder : int }

let guard g_what = { g_what; mutex = Mutex.create (); holder = unclaimed }

let with_guard g f =
  Mutex.lock g.mutex;
  g.holder <- self_id ();
  Fun.protect
    ~finally:(fun () ->
      g.holder <- unclaimed;
      Mutex.unlock g.mutex)
    f

let assert_held g =
  if Atomic.get on && g.holder <> self_id () then
    raise
      (Violation
         (Printf.sprintf "%s requires its guard to be held, but domain %d does not hold it"
            g.g_what (self_id ())))
