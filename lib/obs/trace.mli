(** Nestable timed spans with typed attributes, recorded into an
    in-memory ring buffer.

    A tracer is {e off by default}: while disabled, {!start} returns a
    shared dummy span and {!with_span} tail-calls the body — one boolean
    load and no allocation, so instrumentation can stay in hot paths
    permanently. When enabled, each span records wall-clock start/end
    times (relative to the tracer's epoch), its parent (the innermost
    open span), its nesting depth and an attribute list; completed spans
    land in a bounded ring buffer (oldest dropped first).

    The executor opens one span per plan operator with the attribute
    schema documented in DESIGN.md §7 ([path], [op], [engine], [in],
    [out], [pages_read], …); {!Export} renders the recorded events as a
    profile tree, Chrome [trace_event] JSON, or TSV. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

type event = {
  id : int;      (** start-order sequence number (unique per tracer epoch) *)
  parent : int;  (** [id] of the enclosing span, [-1] for roots *)
  depth : int;   (** nesting depth, roots at 0 *)
  name : string;
  t0 : float;    (** seconds since the tracer epoch *)
  t1 : float;
  attrs : attr list;
}

type span
(** A handle for an open span. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the ring buffer (default 65536 completed spans). *)

val default : t
(** The process-wide tracer the built-in instrumentation uses. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val clear : t -> unit
(** Drop all recorded events and open spans; restart the epoch and ids. *)

val null_span : span
(** The dummy handle returned while disabled; finishing it is a no-op. *)

val start : t -> ?attrs:attr list -> string -> span

val add_attrs : span -> attr list -> unit
(** Append attributes to an open span (no-op on {!null_span}). *)

val finish : t -> span -> unit
(** Close the span and record it. Spans opened after [span] and still
    open are closed (and recorded) first, so the record always
    balances. *)

val with_span : t -> ?attrs:attr list -> string -> (span -> 'a) -> 'a
(** [with_span t name f] brackets [f] in a span (closed on exceptions
    too). While disabled this is just [f null_span]. *)

val events : t -> event list
(** Completed spans in start order (ascending [id]). Parents therefore
    precede their children even though they complete after them. *)

val dropped : t -> int
(** Events lost to ring overflow since the last {!clear}. Every drop
    (from any tracer) also bumps the [trace.dropped] counter in
    {!Metrics.default}, so overflow is visible in [/metrics]. *)

val attr : event -> string -> value option
val attr_int : event -> string -> int option
val attr_str : event -> string -> string option

val duration_us : event -> float
