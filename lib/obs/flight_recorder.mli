(** Query flight recorder: always-on, allocation-light accounting of
    every query a server (or embedded session) runs, keyed by plan
    fingerprint, plus a bounded ring of full captures for slow queries.

    Two data structures, both bounded:

    - the {e query store}: a mutex-sharded table from plan fingerprint
      to a per-plan accumulator (count, log2 latency histogram, rows
      out, pages read, cache hits, deadline misses, worst per-operator
      q-error). Recording locks only the fingerprint's shard, so
      concurrent worker domains running distinct plans rarely contend.
      Each shard admits a bounded number of distinct fingerprints;
      admissions past the cap are counted in {!dropped} rather than
      growing without bound.
    - the {e slow ring}: a fixed-size ring of {!capture} values — full
      physical plan rendering, per-operator actual-vs-estimated rows,
      and the request's trace events — overwriting oldest-first.

    Domain safety (DESIGN.md §11, §13): the enable flag is an
    [Atomic.t]; the store is guarded per shard and the ring by its own
    guard, both via {!Dsan.guard} so the sanitizer can verify the
    discipline. *)

type t

(** One finished query, as reported by the session layer. *)
type sample = {
  fingerprint : string;  (** plan fingerprint ({!Logical_plan.fingerprint}) *)
  query : string;        (** representative source text *)
  mode : string;         (** ["xpath"] or ["xquery"] *)
  latency_ms : float;
  rows : int;            (** result rows/items produced *)
  pages_read : int;      (** pager logical reads attributed to the query *)
  cache_hit : bool;      (** plan-cache hit *)
  deadline_missed : bool;
  failed : bool;         (** any error outcome (including deadline) *)
  worst_q_error : float; (** worst per-operator q-error; [1.0] if unknown *)
}

(** Aggregate per-fingerprint statistics (a snapshot of one store entry). *)
type stat = {
  st_fingerprint : string;
  st_query : string;
  st_mode : string;
  st_count : int;
  st_errors : int;
  st_total_ms : float;
  st_max_ms : float;
  st_p50_ms : float;  (** approximate (log2-bucket upper bound) *)
  st_p99_ms : float;  (** approximate (log2-bucket upper bound) *)
  st_rows : int;
  st_pages_read : int;
  st_cache_hits : int;
  st_deadline_misses : int;
  st_worst_q_error : float;
}

(** Per-operator profile row inside a slow capture. *)
type op_profile = {
  op_path : string;           (** plan-tree path, "0", "0.1", … *)
  op_label : string;          (** operator label ({!Physical_plan.op_label}) *)
  op_engine : string option;  (** engine for τ operators *)
  op_est_rows : float;        (** optimizer estimate from the IR *)
  op_actual_rows : int;       (** rows actually produced *)
  op_ms : float;
}

(** A fully captured slow query. *)
type capture = {
  cap_request_id : string;
  cap_sample : sample;
  cap_plan : string;  (** pretty-printed physical plan *)
  cap_ops : op_profile list;
  cap_events : Trace.event list;  (** the request's trace, if traced *)
  cap_wall : float;  (** Unix time of capture *)
}

val create : ?shards:int -> ?capacity:int -> ?slow_capacity:int -> unit -> t
(** [shards] store shards (default 8); [capacity] max distinct
    fingerprints {e per shard} (default 512); [slow_capacity] slow-ring
    size (default 64). *)

val default : t
(** The process-wide recorder the serve path feeds. *)

val set_enabled : t -> bool -> unit
(** Recorders start enabled; disabling turns {!record} and {!capture}
    into a single atomic load and branch. *)

val enabled : t -> bool

val record : t -> sample -> unit
(** Fold one finished query into the store (locks one shard). *)

val capture : t -> capture -> unit
(** Push a slow-query capture onto the ring (oldest overwritten). *)

val stats : t -> stat list
(** Snapshot of every store entry, unordered. *)

val top : ?k:int -> by:[ `Total_ms | `Count | `Max_ms | `Q_error ] -> t -> stat list
(** Top [k] (default 20) entries, descending by the given key. *)

val by_of_string : string -> [ `Total_ms | `Count | `Max_ms | `Q_error ] option
(** Parse a sort key: ["total_ms"], ["count"], ["max_ms"], ["q_error"]. *)

val slow : t -> capture list
(** Captured slow queries, most recent first. *)

val dropped : t -> int
(** Distinct fingerprints refused because their shard was full. *)

val reset : t -> unit
(** Empty the store, ring and dropped counter. *)

(** {2 JSON renderings} (for the [/debug/*] endpoints) *)

val stat_to_json : stat -> Json.t
val capture_to_json : capture -> Json.t
(** Plan and per-operator profile included; trace events summarized as
    a span count (full traces are served per request id). *)
