type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing --------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string buf ("\n" ^ String.make (2 * n) ' ') in
  let rec go v depth =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s -> escape_into buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          indent (depth + 1);
          go item (depth + 1))
        items;
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          indent (depth + 1);
          escape_into buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go item (depth + 1))
        fields;
      indent depth;
      Buffer.add_char buf '}'
  in
  go v 0;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

let parse input =
  let pos = ref 0 in
  let len = String.length input in
  let fail message = raise (Parse_error (Printf.sprintf "at %d: %s" !pos message)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < len && Char.equal input.[!pos] c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.equal (String.sub input !pos n) word then begin
      pos := !pos + n;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      match input.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= len then fail "unterminated escape";
        (match input.[!pos] with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > len then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub input !pos 4)
            with Failure _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* UTF-8 encode the code point (surrogate pairs not handled —
             the exporters never emit them) *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        loop ()
      | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < len
      && (match input.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
    do
      advance ()
    done;
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((key, value) :: acc)
          | Some '}' -> advance (); List.rev ((key, value) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (value :: acc)
          | Some ']' -> advance (); List.rev (value :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

(* --- accessors -------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr items -> Some items | _ -> None
