(** Domain sanitizer: dynamic checks that the engine's shared mutable
    structures are used according to their declared safety discipline
    (see {!Xqp_analysis.Domain_check} and DESIGN.md §11).

    Two primitives:

    - {e owner stamps} for [Domain_local] structures — the first domain
      that touches the structure claims it, and any touch from another
      domain raises {!Violation};
    - {e guards} for [Guarded_by_mutex] structures — a mutex plus a
      holder stamp, so code paths that require the lock can assert it is
      actually held by the current domain.

    All checks are off by default and enabled by [XQP_DSAN=1] in the
    environment (or {!set_enabled}, for tests). When off, a check is a
    single atomic load and a branch — no allocation, mirroring the
    disabled-tracer discipline of {!Trace}. Guards still lock their
    mutex when the sanitizer is off: the locking is the fix, the
    sanitizer only verifies the discipline around it. *)

exception Violation of string
(** Raised by a failed check: a structure declared [Domain_local] was
    touched from a second domain, or a lock-held assertion fired. *)

val enabled : unit -> bool
(** True when [XQP_DSAN] was set to [1]/[true]/[yes] at startup, or
    {!set_enabled} turned checking on. *)

val set_enabled : bool -> unit
(** Toggle checking at run time (used by the stress tests). *)

(** {2 Owner stamps} *)

type owner
(** A claimable stamp carried by a [Domain_local] structure. *)

val owner : string -> owner
(** [owner what] makes an unclaimed stamp; [what] names the structure
    in violation messages (e.g. ["Pager"]). *)

val assert_owner : owner -> unit
(** Claim the stamp for the current domain on first use; raise
    {!Violation} if another domain already owns it. No-op when
    checking is off. *)

val release_owner : owner -> unit
(** Return the stamp to the unclaimed state — an explicit hand-off
    point for structures that legitimately migrate between domains. *)

(** {2 Guards} *)

type guard
(** A mutex plus a holder stamp for a [Guarded_by_mutex] structure. *)

val guard : string -> guard
(** [guard what] makes a guard around a fresh mutex. *)

val with_guard : guard -> (unit -> 'a) -> 'a
(** Run the thunk with the guard's mutex held (always — independent of
    {!enabled}), recording the holding domain for {!assert_held}. *)

val assert_held : guard -> unit
(** Raise {!Violation} unless the current domain is inside
    {!with_guard} on this guard. No-op when checking is off. *)
