(** Minimal JSON values — just enough for the trace/metric exporters and
    the bench harness, so the observability layer stays dependency-free.

    The printer emits deterministic output (object fields in the order
    given, numbers as integers when integral, [%.3f] otherwise), which
    lets round-trip tests compare re-exported strings verbatim. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} with a position-annotated message. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default false) indents by two spaces. *)

val parse : string -> t
(** Parse a complete JSON document (trailing whitespace allowed).
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup on objects; [None] on other constructors. *)

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option
