type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

let bucket_count = 64

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* log2 buckets: sample s lands in bucket ⌈log2 s⌉, clamped *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }
let default = create ()

let register t name make cast kind_name =
  match Hashtbl.find_opt t.table name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Metrics: %s is not a %s" name kind_name))
  | None ->
    let v = make () in
    Hashtbl.add t.table name v;
    match cast v with Some v -> v | None -> assert false

let counter t name =
  register t name
    (fun () -> Counter { c_value = 0 })
    (function Counter c -> Some c | _ -> None)
    "counter"

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let gauge t name =
  register t name
    (fun () -> Gauge { g_value = 0.0 })
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram t name =
  register t name
    (fun () ->
      Histogram
        {
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make bucket_count 0;
        })
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let bucket_index v =
  if v <= 1.0 then 0
  else min (bucket_count - 1) (1 + int_of_float (Float.log2 v |> Float.floor))

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let summary h =
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      buckets := (Float.pow 2.0 (float_of_int i), h.h_buckets.(i)) :: !buckets
  done;
  { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max; buckets = !buckets }

type reading =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_summary

let reading_of = function
  | Counter c -> Counter_v c.c_value
  | Gauge g -> Gauge_v g.g_value
  | Histogram h -> Histogram_v (summary h)

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, reading_of m) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name = Option.map reading_of (Hashtbl.find_opt t.table name)

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity;
        Array.fill h.h_buckets 0 bucket_count 0)
    t.table

let pp ppf t =
  List.iter
    (fun (name, reading) ->
      match reading with
      | Counter_v v -> Format.fprintf ppf "%-40s %d@." name v
      | Gauge_v v -> Format.fprintf ppf "%-40s %g@." name v
      | Histogram_v s ->
        Format.fprintf ppf "%-40s count=%d sum=%g min=%g max=%g@." name s.count s.sum
          (if s.count = 0 then 0.0 else s.min)
          (if s.count = 0 then 0.0 else s.max))
    (snapshot t)

let to_tsv t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, reading) ->
      match reading with
      | Counter_v v -> Buffer.add_string buf (Printf.sprintf "%s\tcounter\t%d\n" name v)
      | Gauge_v v -> Buffer.add_string buf (Printf.sprintf "%s\tgauge\t%g\n" name v)
      | Histogram_v s ->
        Buffer.add_string buf
          (Printf.sprintf "%s\thistogram\tcount=%d sum=%g min=%g max=%g\n" name s.count s.sum
             (if s.count = 0 then 0.0 else s.min)
             (if s.count = 0 then 0.0 else s.max)))
    (snapshot t);
  Buffer.contents buf
