type counter = { c_value : int Atomic.t }
type gauge = { g_value : float Atomic.t }

let bucket_count = 64

(* Histograms batch several fields per observation, so they carry their
   own mutex instead of going atomic field-by-field (observations are
   per-query, not per-node — the lock never shows up in profiles). *)
type histogram = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* log2 buckets: sample s lands in bucket ⌈log2 s⌉, clamped *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(* The registry table is shared by every domain that emits metrics;
   get-or-create and whole-table reads go through [guard]. The handles
   the table hands out are themselves domain-safe (atomics, or the
   histogram's own lock), so bumping a metric never touches the guard. *)
type t = { guard : Dsan.guard; table : (string, metric) Hashtbl.t }

let create () = { guard = Dsan.guard "Metrics registry"; table = Hashtbl.create 64 }
let default = create ()

let register t name make cast kind_name =
  let m =
    Dsan.with_guard t.guard (fun () ->
        Dsan.assert_held t.guard;
        match Hashtbl.find_opt t.table name with
        | Some m -> m
        | None ->
          let v = make () in
          Hashtbl.add t.table name v;
          v)
  in
  match cast m with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Metrics: %s is not a %s" name kind_name)

let counter t name =
  register t name
    (fun () -> Counter { c_value = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)
    "counter"

let incr c = ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value

let gauge t name =
  register t name
    (fun () -> Gauge { g_value = Atomic.make 0.0 })
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let set g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

let histogram t name =
  register t name
    (fun () ->
      Histogram
        {
          h_lock = Mutex.create ();
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make bucket_count 0;
        })
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let bucket_index v =
  if v <= 1.0 then 0
  else min (bucket_count - 1) (1 + int_of_float (Float.log2 v |> Float.floor))

let observe h v =
  Mutex.lock h.h_lock;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  Mutex.unlock h.h_lock

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let summary h =
  Mutex.lock h.h_lock;
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      buckets := (Float.pow 2.0 (float_of_int i), h.h_buckets.(i)) :: !buckets
  done;
  let s =
    { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max; buckets = !buckets }
  in
  Mutex.unlock h.h_lock;
  s

type reading =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_summary

let reading_of = function
  | Counter c -> Counter_v (Atomic.get c.c_value)
  | Gauge g -> Gauge_v (Atomic.get g.g_value)
  | Histogram h -> Histogram_v (summary h)

(* Sorted by name: exports must not depend on hash-table iteration
   order, so snapshots (and everything rendered from them) are
   deterministic across runs and insertion orders. *)
let snapshot t =
  Dsan.with_guard t.guard (fun () ->
      Hashtbl.fold (fun name m acc -> (name, reading_of m) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name =
  Option.map reading_of (Dsan.with_guard t.guard (fun () -> Hashtbl.find_opt t.table name))

let reset t =
  Dsan.with_guard t.guard (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
            Mutex.lock h.h_lock;
            h.h_count <- 0;
            h.h_sum <- 0.0;
            h.h_min <- infinity;
            h.h_max <- neg_infinity;
            Array.fill h.h_buckets 0 bucket_count 0;
            Mutex.unlock h.h_lock)
        t.table)

let pp ppf t =
  List.iter
    (fun (name, reading) ->
      match reading with
      | Counter_v v -> Format.fprintf ppf "%-40s %d@." name v
      | Gauge_v v -> Format.fprintf ppf "%-40s %g@." name v
      | Histogram_v s ->
        Format.fprintf ppf "%-40s count=%d sum=%g min=%g max=%g@." name s.count s.sum
          (if s.count = 0 then 0.0 else s.min)
          (if s.count = 0 then 0.0 else s.max))
    (snapshot t)

let to_tsv t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, reading) ->
      match reading with
      | Counter_v v -> Buffer.add_string buf (Printf.sprintf "%s\tcounter\t%d\n" name v)
      | Gauge_v v -> Buffer.add_string buf (Printf.sprintf "%s\tgauge\t%g\n" name v)
      | Histogram_v s ->
        Buffer.add_string buf
          (Printf.sprintf "%s\thistogram\tcount=%d sum=%g min=%g max=%g\n" name s.count s.sum
             (if s.count = 0 then 0.0 else s.min)
             (if s.count = 0 then 0.0 else s.max)))
    (snapshot t);
  Buffer.contents buf
