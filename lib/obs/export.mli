(** Exporters for recorded trace events.

    Three renderings of one {!Trace.events} list:

    - {!pp_profile_tree} — indented human-readable tree (explain/REPL);
    - {!to_chrome_json} — Chrome [trace_event] format (the JSON Object
      Format: [{"traceEvents": [...]}] with complete ["ph": "X"] events),
      loadable in [chrome://tracing] or Perfetto;
    - {!to_tsv} — one row per span for the bench harness.

    {!of_chrome_json} parses the Chrome export back (the span tree is
    carried in [args.span_id]/[args.span_parent]/[args.span_depth]), so
    exports round-trip and the trace checker in [scripts/] can validate
    files structurally. *)

val pp_profile_tree : Format.formatter -> Trace.event list -> unit
(** Indented tree, one line per span: duration, name, attributes. *)

val to_chrome_json : ?process_name:string -> Trace.event list -> string
(** Chrome trace_event JSON ([pid] 1, [tid] 1, timestamps in
    microseconds since the tracer epoch). [process_name] emits a
    [process_name] metadata event (default ["xqp"]). *)

val of_chrome_json : string -> Trace.event list
(** Rebuild events from {!to_chrome_json} output (metadata events are
    ignored). @raise Json.Parse_error on malformed JSON;
    @raise Failure on well-formed JSON that is not a trace export. *)

val to_tsv : Trace.event list -> string
(** Header + one [id, parent, depth, name, start_us, dur_us, attrs] row
    per event; attributes are packed [k=v] pairs separated by [;]. *)

val to_prometheus : ?namespace:string -> Metrics.t -> string
(** Prometheus text exposition (format 0.0.4) of a whole registry — the
    body served by the [/metrics] endpoint of [xqp serve]. Registry dots
    become underscores under the [namespace] prefix (default ["xqp"]);
    counters get [_total], histograms cumulative [le] buckets plus
    [_sum]/[_count]. Deterministic: metrics appear sorted by name. *)
