(** Dynamic evaluation of the XQuery subset.

    FLWOR expressions are evaluated through the {!Xqp_algebra.Env} sort
    exactly as Definition 3 prescribes: each clause adds a layer, the
    return expression runs once per total variable binding. Path
    expressions are compiled by the logical optimizer and dispatched to a
    physical pattern-matching engine by the {!Xqp_physical.Executor};
    constructors produce {!Xqp_algebra.Value.Frag} items (γ).

    Built-in functions: [count], [sum], [avg], [min], [max], [exists],
    [empty], [not], [string], [number], [data], [concat], [contains],
    [string-length], [name], [distinct-values], [position]-free subset. *)

exception Error of string

val eval :
  Xqp_physical.Executor.t ->
  ?strategy:Xqp_physical.Executor.strategy ->
  ?bindings:(string * Xqp_algebra.Value.t) list ->
  ?deadline:float ->
  Ast.expr ->
  Xqp_algebra.Value.t
(** Evaluate an expression. Paths rooted at the document use the
    executor's document; [?bindings] seeds the variable environment.
    [deadline] (absolute [Unix.gettimeofday] instant) is checked
    cooperatively at every expression node and inside path dispatch.
    @raise Error on dynamic errors (unknown variable or function,
    non-numeric arithmetic, navigation into constructed fragments).
    @raise Xqp_physical.Executor.Deadline_exceeded past [deadline]. *)

val eval_query :
  Xqp_physical.Executor.t ->
  ?strategy:Xqp_physical.Executor.strategy ->
  ?deadline:float ->
  string ->
  Xqp_algebra.Value.t
(** Parse with {!Xq_parser.parse} and evaluate. *)

val result_trees : Xqp_physical.Executor.t -> Xqp_algebra.Value.t -> Xqp_xml.Tree.t list
(** Serialize a result sequence: nodes are copied out of the document,
    fragments kept, atomics become text nodes. *)

val result_string : Xqp_physical.Executor.t -> Xqp_algebra.Value.t -> string
(** XML serialization of {!result_trees} (concatenated). *)
