module Doc = Xqp_xml.Document
module Tree = Xqp_xml.Tree
module Value = Xqp_algebra.Value
module Env = Xqp_algebra.Env
module Ops = Xqp_algebra.Operators
module Executor = Xqp_physical.Executor

exception Error of string

let fail fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

let item_to_tree doc (item : Value.item) =
  match item with
  | Value.Node id -> (
    match Doc.kind doc id with
    | Doc.Attribute -> Tree.text (Doc.content doc id)
    | Doc.Text | Doc.Element | Doc.Comment | Doc.Pi -> Doc.to_tree doc id)
  | Value.Frag tree -> tree
  | atomic -> Tree.text (Value.string_of_item doc atomic)

let result_trees exec value = List.map (item_to_tree (Executor.doc exec)) value

let result_string exec value =
  String.concat "" (List.map (fun t -> Xqp_xml.Serializer.to_string t) (result_trees exec value))

(* Plans inside the AST have base Context and are re-evaluated once per
   FLWOR binding; the plan cache (keyed by the raw plan's fingerprint)
   makes the rewrite + planning a one-time cost per distinct path. *)
let run_path exec strategy deadline plan ~context =
  let physical = Executor.compile_plan exec ~strategy ~optimize:true plan in
  let nodes = Executor.run_physical exec ?deadline physical ~context in
  (* the virtual document node may flow out of a bare "/" *)
  List.map
    (fun id -> if id = Ops.document_context then Doc.root (Executor.doc exec) else id)
    nodes
  |> List.sort_uniq compare

let number_or_fail doc item =
  match Value.number_of_item doc item with
  | Some f -> f
  | None -> fail "non-numeric value %S in arithmetic" (Value.string_of_item doc item)

let general_compare doc op (left : Value.t) (right : Value.t) =
  let cmp x y = Value.compare_items doc x y in
  let holds x y =
    match (op : Ast.binop) with
    | Ast.Eq -> Value.item_equal doc x y
    | Ast.Ne -> not (Value.item_equal doc x y)
    | Ast.Lt -> cmp x y < 0
    | Ast.Le -> cmp x y <= 0
    | Ast.Gt -> cmp x y > 0
    | Ast.Ge -> cmp x y >= 0
    | _ -> assert false
  in
  List.exists (fun x -> List.exists (fun y -> holds x y) right) left

(* [deadline] is checked at every expression node — FLWOR loops and
   quantifiers re-enter [eval] per binding, so a long evaluation hits a
   cooperative check even between path dispatches. *)
let rec eval exec ?(strategy = Executor.Auto) ?(bindings = []) ?deadline (expr : Ast.expr) :
    Value.t =
  Executor.check_deadline deadline;
  let doc = Executor.doc exec in
  let ev ?(bindings = bindings) e = eval exec ~strategy ~bindings ?deadline e in
  match expr with
  | Ast.Literal_int i -> [ Value.Int i ]
  | Ast.Literal_float f -> [ Value.Float f ]
  | Ast.Literal_string s -> [ Value.Str s ]
  | Ast.Sequence es -> List.concat_map (fun e -> ev e) es
  | Ast.Doc_root -> [ Value.Node (Doc.root doc) ]
  | Ast.Var v -> (
    match List.assoc_opt v bindings with
    | Some value -> value
    | None -> fail "unbound variable $%s" v)
  | Ast.Path (base, plan) ->
    let context =
      match base with
      | Ast.From_root -> [ Ops.document_context ]
      | Ast.From_context -> [ Ops.document_context ]
      | Ast.From_expr e ->
        let value = ev e in
        List.map
          (function
            | Value.Node id -> id
            | Value.Frag _ -> fail "navigation into constructed fragments is not supported"
            | other -> fail "cannot navigate from atomic value %S" (Value.string_of_item doc other))
          value
    in
    Value.of_nodes (run_path exec strategy deadline plan ~context)
  | Ast.Binop (op, a, b) -> eval_binop exec strategy bindings deadline doc op a b
  | Ast.If_then_else (c, t, e) ->
    if Value.effective_boolean doc (ev c) then ev t else ev e
  | Ast.Call (f, args) -> eval_call exec strategy bindings deadline doc f args
  | Ast.Constructor c -> [ Value.Frag (build_constructor exec strategy bindings deadline doc c) ]
  | Ast.Flwor f -> eval_flwor exec strategy bindings deadline doc f
  | Ast.Quantified (q, binds, cond) ->
    (* nested iteration over the bound sequences; some = ∃, every = ∀ *)
    let rec iterate bindings = function
      | [] -> Value.effective_boolean doc (eval exec ~strategy ~bindings ?deadline cond)
      | (v, e) :: rest ->
        let items = eval exec ~strategy ~bindings ?deadline e in
        let per item = iterate ((v, [ item ]) :: bindings) rest in
        (match q with
        | Ast.Some_q -> List.exists per items
        | Ast.Every_q -> List.for_all per items)
    in
    [ Value.Bool (iterate bindings binds) ]

and eval_binop exec strategy bindings deadline doc op a b =
  let ev e = eval exec ~strategy ~bindings ?deadline e in
  match op with
  | Ast.And ->
    [ Value.Bool (Value.effective_boolean doc (ev a) && Value.effective_boolean doc (ev b)) ]
  | Ast.Or ->
    [ Value.Bool (Value.effective_boolean doc (ev a) || Value.effective_boolean doc (ev b)) ]
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    [ Value.Bool (general_compare doc op (ev a) (ev b)) ]
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
    match (ev a, ev b) with
    | [], _ | _, [] -> []
    | [ x ], [ y ] ->
      let fx = number_or_fail doc x and fy = number_or_fail doc y in
      let result =
        match op with
        | Ast.Add -> fx +. fy
        | Ast.Sub -> fx -. fy
        | Ast.Mul -> fx *. fy
        | Ast.Div -> fx /. fy
        | Ast.Mod -> Float.rem fx fy
        | _ -> assert false
      in
      if Float.is_integer result && Float.abs result < 1e15 then [ Value.Int (int_of_float result) ]
      else [ Value.Float result ]
    | _ -> fail "arithmetic over multi-item sequences")

and eval_call exec strategy bindings deadline doc f args =
  let ev e = eval exec ~strategy ~bindings ?deadline e in
  let one name =
    match args with [ e ] -> ev e | _ -> fail "%s expects exactly one argument" name
  in
  match f with
  | "__union" -> (
    (* the | operator: node-set union in document order *)
    let both = List.concat_map (fun e -> ev e) args in
    match Value.doc_order both with
    | ordered -> ordered
    | exception Invalid_argument _ -> fail "operands of | must be node sequences")
  | "count" -> [ Value.Int (List.length (one "count")) ]
  | "exists" -> [ Value.Bool (one "exists" <> []) ]
  | "empty" -> [ Value.Bool (one "empty" = []) ]
  | "not" -> [ Value.Bool (not (Value.effective_boolean doc (one "not"))) ]
  | "string" -> (
    match one "string" with
    | [] -> [ Value.Str "" ]
    | [ item ] -> [ Value.Str (Value.string_of_item doc item) ]
    | _ -> fail "string over a multi-item sequence")
  | "number" -> (
    match one "number" with
    | [ item ] -> (
      match Value.number_of_item doc item with
      | Some n -> [ Value.Float n ]
      | None -> [ Value.Float Float.nan ])
    | _ -> [ Value.Float Float.nan ])
  | "data" -> List.map (fun item -> Value.Str (Value.string_of_item doc item)) (one "data")
  | "sum" ->
    let total =
      List.fold_left (fun acc item -> acc +. number_or_fail doc item) 0.0 (one "sum")
    in
    if Float.is_integer total then [ Value.Int (int_of_float total) ] else [ Value.Float total ]
  | "avg" -> (
    match one "avg" with
    | [] -> []
    | items ->
      let total = List.fold_left (fun acc item -> acc +. number_or_fail doc item) 0.0 items in
      [ Value.Float (total /. float_of_int (List.length items)) ])
  | "min" | "max" -> (
    match one f with
    | [] -> []
    | first :: rest ->
      let pick =
        if String.equal f "min" then fun x y -> if Value.compare_items doc x y <= 0 then x else y
        else fun x y -> if Value.compare_items doc x y >= 0 then x else y
      in
      [ List.fold_left pick first rest ])
  | "concat" ->
    [ Value.Str
        (String.concat ""
           (List.map
              (fun e ->
                match ev e with
                | [] -> ""
                | [ item ] -> Value.string_of_item doc item
                | _ -> fail "concat argument is a multi-item sequence")
              args)) ]
  | "contains" -> (
    match args with
    | [ a; b ] ->
      let to_str e =
        match ev e with [] -> "" | [ item ] -> Value.string_of_item doc item | _ -> fail "contains: sequence"
      in
      let haystack = to_str a and needle = to_str b in
      let hl = String.length haystack and nl = String.length needle in
      let rec scan i =
        i + nl <= hl && (String.equal (String.sub haystack i nl) needle || scan (i + 1))
      in
      [ Value.Bool (nl = 0 || scan 0) ]
    | _ -> fail "contains expects two arguments")
  | "string-length" -> (
    match one "string-length" with
    | [] -> [ Value.Int 0 ]
    | [ item ] -> [ Value.Int (String.length (Value.string_of_item doc item)) ]
    | _ -> fail "string-length: sequence")
  | "name" -> (
    match one "name" with
    | [ Value.Node id ] -> [ Value.Str (Doc.name doc id) ]
    | [ Value.Frag (Tree.Element e) ] -> [ Value.Str e.Tree.name ]
    | _ -> [ Value.Str "" ])
  | "distinct-values" ->
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun item ->
        let key = Value.string_of_item doc item in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some (Value.Str key)
        end)
      (one "distinct-values")
  | "true" -> ( match args with [] -> [ Value.Bool true ] | _ -> fail "true() takes no arguments")
  | "false" -> ( match args with [] -> [ Value.Bool false ] | _ -> fail "false() takes no arguments")
  | "boolean" -> [ Value.Bool (Value.effective_boolean doc (one "boolean")) ]
  | "floor" | "ceiling" | "round" | "abs" -> (
    match one f with
    | [] -> []
    | [ item ] ->
      let x = number_or_fail doc item in
      let r =
        match f with
        | "floor" -> Float.floor x
        | "ceiling" -> Float.ceil x
        | "round" -> Float.round x
        | _ -> Float.abs x
      in
      if Float.is_integer r && Float.abs r < 1e15 then [ Value.Int (int_of_float r) ]
      else [ Value.Float r ]
    | _ -> fail "%s: sequence" f)
  | "upper-case" | "lower-case" | "normalize-space" -> (
    match one f with
    | [] -> [ Value.Str "" ]
    | [ item ] ->
      let s = Value.string_of_item doc item in
      let r =
        match f with
        | "upper-case" -> String.uppercase_ascii s
        | "lower-case" -> String.lowercase_ascii s
        | _ ->
          (* collapse runs of whitespace to single spaces and trim *)
          String.split_on_char ' ' (String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s)
          |> List.filter (fun w -> w <> "")
          |> String.concat " "
      in
      [ Value.Str r ]
    | _ -> fail "%s: sequence" f)
  | "starts-with" | "ends-with" -> (
    match args with
    | [ a; b ] ->
      let str e =
        match ev e with [] -> "" | [ i ] -> Value.string_of_item doc i | _ -> fail "%s: sequence" f
      in
      let s = str a and p = str b in
      let sl = String.length s and pl = String.length p in
      let ok =
        if pl > sl then false
        else if String.equal f "starts-with" then String.equal (String.sub s 0 pl) p
        else String.equal (String.sub s (sl - pl) pl) p
      in
      [ Value.Bool ok ]
    | _ -> fail "%s expects two arguments" f)
  | "substring" -> (
    let str e =
      match ev e with [] -> "" | [ i ] -> Value.string_of_item doc i | _ -> fail "substring: sequence"
    in
    let num e =
      match ev e with
      | [ i ] -> number_or_fail doc i
      | _ -> fail "substring: numeric argument expected"
    in
    match args with
    | [ a; b ] | [ a; b; _ ] ->
      let s = str a in
      let n = String.length s in
      let start = int_of_float (Float.round (num b)) in
      let len =
        match args with
        | [ _; _; c ] -> int_of_float (Float.round (num c))
        | _ -> n - start + 1
      in
      (* 1-based start; clamp to the string *)
      let from = max 1 start in
      let until = min (n + 1) (start + len) in
      if until <= from then [ Value.Str "" ]
      else [ Value.Str (String.sub s (from - 1) (until - from)) ]
    | _ -> fail "substring expects 2 or 3 arguments")
  | "string-join" -> (
    match args with
    | [ a; b ] ->
      let sep =
        match ev b with [] -> "" | [ i ] -> Value.string_of_item doc i | _ -> fail "string-join: sep"
      in
      [ Value.Str (String.concat sep (List.map (Value.string_of_item doc) (ev a))) ]
    | _ -> fail "string-join expects two arguments")
  | other -> fail "unknown function %s()" other

and eval_flwor exec strategy bindings deadline doc f =
  (* Build the Env layer by layer (Definition 3), then evaluate the return
     clause once per total binding; order-by reorders the bindings. *)
  let ev_with bs e =
    eval exec ~strategy ~bindings:(bs @ bindings) ?deadline e
  in
  let env, order_keys =
    List.fold_left
      (fun (env, order_keys) clause ->
        match (clause : Ast.clause) with
        | Ast.For_clause (v, index, e) ->
          (Env.extend_for ?index env v (fun bs -> ev_with bs e), order_keys)
        | Ast.Let_clause (v, e) -> (Env.extend_let env v (fun bs -> ev_with bs e), order_keys)
        | Ast.Where_clause e ->
          ( Env.filter_where env (fun bs -> Value.effective_boolean doc (ev_with bs e)),
            order_keys )
        | Ast.Order_by keys -> (env, order_keys @ keys))
      (Env.empty, []) f.Ast.clauses
  in
  let paths = Env.paths env in
  let ordered =
    if order_keys = [] then paths
    else begin
      let key_of bs =
        List.map
          (fun (e, dir) ->
            let v = ev_with bs e in
            (v, dir))
          order_keys
      in
      let compare_keys k1 k2 =
        let rec go = function
          | [] -> 0
          | ((v1, dir), (v2, _)) :: rest ->
            let c =
              match (v1, v2) with
              | [], [] -> 0
              | [], _ -> -1
              | _, [] -> 1
              | x :: _, y :: _ -> Value.compare_items doc x y
            in
            let c = match (dir : Ast.sort_direction) with Ast.Ascending -> c | Ast.Descending -> -c in
            if c <> 0 then c else go rest
        in
        go (List.combine k1 k2)
      in
      List.stable_sort (fun b1 b2 -> compare_keys (key_of b1) (key_of b2)) paths
    end
  in
  List.concat_map (fun bs -> ev_with bs f.Ast.return_) ordered

and build_constructor exec strategy bindings deadline doc (c : Ast.constructor) =
  let ev e = eval exec ~strategy ~bindings ?deadline e in
  let attrs =
    List.map
      (fun (key, pieces) ->
        let value =
          String.concat ""
            (List.map
               (function
                 | Ast.Attr_text s -> s
                 | Ast.Attr_expr e ->
                   String.concat " " (List.map (Value.string_of_item doc) (ev e)))
               pieces)
        in
        (key, value))
      c.Ast.attrs
  in
  let children =
    List.concat_map
      (function
        | Ast.Fixed_text s -> [ Tree.text s ]
        | Ast.Nested nested -> [ build_constructor exec strategy bindings deadline doc nested ]
        | Ast.Embedded e -> List.map (item_to_tree doc) (ev e))
      c.Ast.content
  in
  Tree.elt ~attrs c.Ast.name children

let eval_query exec ?strategy ?deadline input =
  eval exec ?strategy ?deadline (Xq_parser.parse input)
