(** The [PatternGraph] sort (Definition 1): Σ, V, A, R, O.

    A pattern graph captures the structural and value constraints of one or
    more path expressions. Vertices carry a label (a tag or the wildcard)
    and a list of value predicates [(op, literal)]; arcs carry a binary
    structural relation; O marks the output vertices whose matches the τ
    operator returns.

    The patterns produced by the XPath compiler are tree-shaped (twigs);
    {!make} enforces that, since all the physical pattern-matching engines
    evaluate twigs. Vertex 0 is the {e context vertex} (the vertex the
    paper labels "root"): it binds to the evaluation context node — the
    document root for absolute paths — and is never an output. *)

type rel = Child | Descendant | Attribute | Following_sibling

type comparison = Eq | Ne | Lt | Le | Gt | Ge | Contains

type literal = Num of float | Str of string

type predicate = { comparison : comparison; literal : literal }
(** A value constraint on the matched node's typed (text) value. *)

type label = Wildcard | Tag of string

type vertex = { label : label; predicates : predicate list; output : bool }

type t

val make : vertices:vertex array -> arcs:(int * int * rel) list -> t
(** [make ~vertices ~arcs] builds a pattern rooted at vertex 0.
    @raise Invalid_argument if the arcs do not form a tree on the
    vertices (see {!validate}). *)

val vertex_count : t -> int
val vertex : t -> int -> vertex
val children : t -> int -> (int * rel) list
(** Outgoing arcs of a vertex, in insertion order. *)

val parent : t -> int -> (int * rel) option
(** Incoming arc; [None] for the root. *)

val root : t -> int
(** Always 0. *)

val outputs : t -> int list
(** Output vertices in vertex order; every pattern has at least one. *)

val arcs : t -> (int * int * rel) list

val is_nok : t -> bool
(** True when every arc is a local relation (Child, Attribute,
    Following_sibling) — a next-of-kin pattern evaluable in one
    navigational scan (§4.2). *)

val vertices_in_document_order : t -> int list
(** Pre-order traversal of the pattern tree. *)

val vertex_path : t -> int -> (rel * label) list
(** [vertex_path t v] is the arc relation and vertex label along the
    unique context-to-[v] path (patterns are trees), outermost first and
    empty for the context vertex. This is the pattern's projection onto a
    linear path — what a structural summary can answer about [v] while
    ignoring predicates and sibling branches. *)

val label_matches :
  Xqp_xml.Document.t -> label -> Xqp_xml.Document.node -> bool
(** Does a document node's name satisfy a label? (Wildcards match any
    element or attribute.) *)

val predicate_holds :
  Xqp_xml.Document.t -> predicate -> Xqp_xml.Document.node -> bool
(** Evaluate a value predicate against a node's typed value: numeric
    comparison when the literal is numeric and the value parses, string
    comparison otherwise; [Contains] is substring search. *)

val vertex_matches : Xqp_xml.Document.t -> t -> int -> Xqp_xml.Document.node -> bool
(** Label, node-kind (attribute vertices match attribute nodes) and all
    predicates. *)

val path : (rel * label * predicate list) list -> t
(** [path steps] chains [steps] into a linear pattern below the context
    vertex; the last vertex is the output. A leading
    [(Child, Tag "a", [])] therefore means [/a].
    @raise Invalid_argument on an empty step list. *)

val pp : Format.formatter -> t -> unit
(** XPath-like rendering, e.g. [/a//b[c][d = "5"]] with the output
    vertices marked. *)

val equal : t -> t -> bool

val fingerprint : t -> string
(** Stable injective serialization of the pattern's structure: two
    patterns have the same fingerprint exactly when {!equal} holds (up to
    the textual representation of float literals). Used for plan-cache
    keys and stable plan comparison — unlike {!pp}, which elides
    structure for readability. *)
