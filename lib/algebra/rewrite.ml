module Lp = Logical_plan
module Pg = Pattern_graph

(* --- rewrite tracing -------------------------------------------------- *)

type rule_fire = { stage : string; rule : string; before_ops : int; after_ops : int }

(* Operator count of a plan fragment, predicates included — the
   before/after sizes a rule fire reports. *)
let rec op_count plan =
  match (plan : Lp.t) with
  | Lp.Root | Lp.Context -> 1
  | Lp.Union (a, b) -> 1 + op_count a + op_count b
  | Lp.Tpm (base, _) -> 1 + op_count base
  | Lp.Step (base, s) ->
    1 + op_count base
    + List.fold_left
        (fun acc p -> match p with Lp.Exists sub -> acc + op_count sub | _ -> acc)
        0 s.Lp.predicates

(* The collector is installed only by the [*_traced] entry points, so the
   plain [simplify]/[fuse]/[optimize] pay one DLS read per rule site.
   Domain-local storage keeps a trace collected on one domain invisible
   to rewrites running concurrently on another (DESIGN.md §11). *)
let collector : rule_fire list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let fire stage rule ~before ~after =
  match Domain.DLS.get collector with
  | None -> ()
  | Some fires ->
    fires :=
      { stage; rule; before_ops = op_count before; after_ops = op_count after } :: !fires

let collect_fires f =
  let fires = ref [] in
  let saved = Domain.DLS.get collector in
  Domain.DLS.set collector (Some fires);
  Fun.protect ~finally:(fun () -> Domain.DLS.set collector saved) f |> fun result ->
  (result, List.rev !fires)

(* --- R0: axis normalization ----------------------------------------- *)

let rec simplify plan =
  match plan with
  | Lp.Root | Lp.Context -> plan
  | Lp.Union (a, b) -> Lp.Union (simplify a, simplify b)
  | Lp.Tpm (base, pg) -> Lp.Tpm (simplify base, pg)
  | Lp.Step (base, s) -> (
    let s = { s with Lp.predicates = List.map simplify_predicate s.Lp.predicates } in
    let base = simplify base in
    match (base, s) with
    (* descendant-or-self::* / child::T  ==>  descendant::T *)
    | ( Lp.Step (inner, { axis = Axis.Descendant_or_self; test = Lp.Any; predicates = [] }),
        { axis = Axis.Child; test; predicates } ) ->
      let result = Lp.Step (inner, { Lp.axis = Axis.Descendant; test; predicates }) in
      fire "simplify" "collapse-desc-or-self-child" ~before:(Lp.Step (base, s)) ~after:result;
      result
    | ( Lp.Step (inner, { axis = Axis.Descendant_or_self; test = Lp.Any; predicates = [] }),
        { axis = Axis.Attribute; test; predicates } ) ->
      (* //@a: any attribute of any descendant-or-self element *)
      Lp.Step
        ( Lp.Step (inner, { Lp.axis = Axis.Descendant_or_self; test = Lp.Any; predicates = [] }),
          { Lp.axis = Axis.Attribute; test; predicates } )
    (* self::* with no predicates is the identity *)
    | base, { axis = Axis.Self; test = Lp.Any; predicates = [] } ->
      fire "simplify" "drop-self-any" ~before:(Lp.Step (base, s)) ~after:base;
      base
    | base, s -> Lp.Step (base, s))

and simplify_predicate = function
  | Lp.Exists sub -> Lp.Exists (simplify sub)
  | (Lp.Value_pred _ | Lp.Position _) as p -> p

(* --- R1/R2: fusion into τ -------------------------------------------- *)

let rel_of_axis = function
  | Axis.Child -> Some Pg.Child
  | Axis.Descendant -> Some Pg.Descendant
  | Axis.Attribute -> Some Pg.Attribute
  | Axis.Self | Axis.Descendant_or_self | Axis.Parent | Axis.Ancestor | Axis.Ancestor_or_self
  | Axis.Following_sibling | Axis.Preceding_sibling | Axis.Following | Axis.Preceding ->
    None

let label_of_test = function
  | Lp.Name n -> Some (Pg.Tag n)
  | Lp.Any -> Some Pg.Wildcard
  | Lp.Text_node -> None

(* Accumulating builder for pattern graphs. *)
type builder = { mutable rev_vertices : Pg.vertex list; mutable rev_arcs : (int * int * Pg.rel) list; mutable n : int }

let new_builder () =
  { rev_vertices = [ { Pg.label = Pg.Wildcard; predicates = []; output = false } ]; rev_arcs = []; n = 1 }

let add_vertex b vertex =
  let id = b.n in
  b.rev_vertices <- vertex :: b.rev_vertices;
  b.n <- id + 1;
  id

let add_arc b source target rel = b.rev_arcs <- (source, target, rel) :: b.rev_arcs

let finish b =
  Pg.make
    ~vertices:(Array.of_list (List.rev b.rev_vertices))
    ~arcs:(List.rev b.rev_arcs)

(* Attach the chain of [steps] below vertex [parent]; returns the id of the
   last vertex, or None if some step is not fusible. [output_last] marks the
   last spine vertex as an output. *)
let rec attach_steps b parent ~output_last steps =
  match steps with
  | [] -> Some parent
  | s :: rest -> (
    match (rel_of_axis s.Lp.axis, label_of_test s.Lp.test) with
    | Some rel, Some label ->
      (* Split predicates into value constraints and branches. *)
      let rec gather preds value_preds branches =
        match preds with
        | [] -> Some (List.rev value_preds, List.rev branches)
        | Lp.Value_pred p :: more -> gather more (p :: value_preds) branches
        | Lp.Exists sub :: more -> (
          match Lp.steps_of sub with
          | Some (Lp.Context, sub_steps) -> gather more value_preds (sub_steps :: branches)
          | Some _ | None -> None)
        | Lp.Position _ :: _ -> None
      in
      (match gather s.Lp.predicates [] [] with
      | None -> None
      | Some (value_preds, branches) ->
        let is_last = rest = [] in
        let v =
          add_vertex b { Pg.label; predicates = value_preds; output = output_last && is_last }
        in
        add_arc b parent v rel;
        let branches_ok =
          List.for_all
            (fun branch_steps ->
              match attach_steps b v ~output_last:false branch_steps with
              | Some _ -> true
              | None -> false)
            branches
        in
        if branches_ok then attach_steps b v ~output_last rest else None)
    | _, _ -> None)

let pattern_of_steps steps =
  if steps = [] then None
  else begin
    let b = new_builder () in
    match attach_steps b 0 ~output_last:true steps with
    | Some _ -> ( try Some (finish b) with Invalid_argument _ -> None)
    | None -> None
  end

(* A step is fusible in isolation (used for segmentation). *)
let step_fusible s = pattern_of_steps [ { s with Lp.predicates = s.Lp.predicates } ] <> None

let rec fuse plan =
  match plan with
  | Lp.Root | Lp.Context -> plan
  | Lp.Union (a, b) -> Lp.Union (fuse a, fuse b)
  | Lp.Tpm (base, pg) -> Lp.Tpm (fuse base, pg)
  | Lp.Step _ ->
    (* Unwind the maximal trailing step run above a non-step base. *)
    let rec unwind plan acc =
      match plan with
      | Lp.Step (base, s) -> unwind base (s :: acc)
      | other -> (other, acc)
    in
    let base, steps = unwind plan [] in
    let base = fuse base in
    (* Greedy segmentation: longest fusible run, then one non-fusible step,
       repeat. Runs of length >= 2 (or any run with a branch predicate)
       become τ; singletons stay navigational steps. *)
    let emit_run base run =
      let run = List.rev run in
      let has_branch =
        List.exists
          (fun s -> List.exists (function Lp.Exists _ -> true | _ -> false) s.Lp.predicates)
          run
      in
      if List.length run >= 2 || has_branch then
        match pattern_of_steps run with
        | Some pg ->
          let result = Lp.Tpm (base, pg) in
          fire "fuse" "fuse-steps-into-tau" ~before:(Lp.of_steps ~base run) ~after:result;
          result
        | None -> Lp.of_steps ~base run
      else Lp.of_steps ~base run
    in
    let rec consume base run steps =
      match steps with
      | [] -> if run = [] then base else emit_run base run
      | s :: rest ->
        let s =
          { s with Lp.predicates = List.map fuse_predicate s.Lp.predicates }
        in
        if step_fusible s then consume base (s :: run) rest
        else begin
          let base = if run = [] then base else emit_run base run in
          consume (Lp.Step (base, s)) [] rest
        end
    in
    consume base [] steps

and fuse_predicate = function
  | Lp.Exists sub -> Lp.Exists sub (* branch predicates are fused as part of the pattern *)
  | (Lp.Value_pred _ | Lp.Position _) as p -> p

let optimize plan = fuse (simplify plan)

let simplify_traced plan = collect_fires (fun () -> simplify plan)
let optimize_traced plan = collect_fires (fun () -> optimize plan)

let pp_rule_fire ppf f =
  Format.fprintf ppf "[%s] %-28s %d -> %d ops" f.stage f.rule f.before_ops f.after_ops
