type node_test = Name of string | Any | Text_node

type predicate =
  | Value_pred of Pattern_graph.predicate
  | Exists of t
  | Position of int

and step = { axis : Axis.t; test : node_test; predicates : predicate list }

and t = Root | Context | Step of t * step | Tpm of t * Pattern_graph.t | Union of t * t

let step ?(predicates = []) axis test = { axis; test; predicates }

let of_steps ~base steps = List.fold_left (fun plan s -> Step (plan, s)) base steps

let steps_of plan =
  let rec unwind plan acc =
    match plan with
    | Step (base, s) -> unwind base (s :: acc)
    | (Root | Context) as base -> Some (base, acc)
    | Tpm _ | Union _ -> None
  in
  unwind plan []

let rec size = function
  | Root | Context -> 0
  | Step (base, s) ->
    size base + 1
    + List.fold_left
        (fun acc p -> match p with Exists sub -> acc + size sub | Value_pred _ | Position _ -> acc)
        0 s.predicates
  | Tpm (base, _) -> size base + 1
  | Union (a, b) -> size a + size b + 1

let rec tpm_count = function
  | Root | Context -> 0
  | Step (base, s) ->
    tpm_count base
    + List.fold_left
        (fun acc p ->
          match p with Exists sub -> acc + tpm_count sub | Value_pred _ | Position _ -> acc)
        0 s.predicates
  | Tpm (base, _) -> tpm_count base + 1
  | Union (a, b) -> tpm_count a + tpm_count b

let pp_test ppf = function
  | Name n -> Format.pp_print_string ppf n
  | Any -> Format.pp_print_string ppf "*"
  | Text_node -> Format.pp_print_string ppf "text()"

let rec pp_predicate ppf = function
  | Value_pred p ->
    let op =
      match p.Pattern_graph.comparison with
      | Pattern_graph.Eq -> "="
      | Ne -> "!="
      | Lt -> "<"
      | Le -> "<="
      | Gt -> ">"
      | Ge -> ">="
      | Contains -> "contains"
    in
    (match p.Pattern_graph.literal with
    | Pattern_graph.Num n -> Format.fprintf ppf "[. %s %g]" op n
    | Pattern_graph.Str s -> Format.fprintf ppf "[. %s %S]" op s)
  | Exists sub -> Format.fprintf ppf "[%a]" pp sub
  | Position k -> Format.fprintf ppf "[%d]" k

and pp_step ppf s =
  (match s.axis with
  | Axis.Child -> Format.fprintf ppf "/"
  | Axis.Descendant -> Format.fprintf ppf "//"
  | Axis.Attribute -> Format.fprintf ppf "/@"
  | other -> Format.fprintf ppf "/%s::" (Axis.to_string other));
  pp_test ppf s.test;
  List.iter (pp_predicate ppf) s.predicates

and pp ppf = function
  | Root -> Format.pp_print_string ppf "root()"
  | Context -> Format.pp_print_string ppf "."
  | Step (base, s) ->
    (match base with Root -> () | other -> pp ppf other);
    pp_step ppf s
  | Tpm (base, pattern) ->
    (match base with Root -> () | other -> pp ppf other);
    Format.fprintf ppf "tpm(%a)" Pattern_graph.pp pattern
  | Union (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b

let op_label = function
  | Root -> "root"
  | Context -> "context"
  | Union _ -> "union"
  | Tpm (_, pattern) -> Format.asprintf "tau(%dv)" (Pattern_graph.vertex_count pattern)
  | Step (_, s) -> Format.asprintf "step %a" pp_step s

let rec equal a b =
  match (a, b) with
  | Root, Root | Context, Context -> true
  | Step (b1, s1), Step (b2, s2) ->
    equal b1 b2 && s1.axis = s2.axis && s1.test = s2.test
    && List.length s1.predicates = List.length s2.predicates
    && List.for_all2 predicate_equal s1.predicates s2.predicates
  | Tpm (b1, p1), Tpm (b2, p2) -> equal b1 b2 && Pattern_graph.equal p1 p2
  | Union (a1, b1), Union (a2, b2) -> equal a1 a2 && equal b1 b2
  | (Root | Context | Step _ | Tpm _ | Union _), _ -> false

and predicate_equal p1 p2 =
  match (p1, p2) with
  | Value_pred a, Value_pred b -> a = b
  | Position a, Position b -> a = b
  | Exists a, Exists b -> equal a b
  | (Value_pred _ | Position _ | Exists _), _ -> false
