type node_test = Name of string | Any | Text_node

type predicate =
  | Value_pred of Pattern_graph.predicate
  | Exists of t
  | Position of int

and step = { axis : Axis.t; test : node_test; predicates : predicate list }

and t = Root | Context | Step of t * step | Tpm of t * Pattern_graph.t | Union of t * t

let step ?(predicates = []) axis test = { axis; test; predicates }

let of_steps ~base steps = List.fold_left (fun plan s -> Step (plan, s)) base steps

let steps_of plan =
  let rec unwind plan acc =
    match plan with
    | Step (base, s) -> unwind base (s :: acc)
    | (Root | Context) as base -> Some (base, acc)
    | Tpm _ | Union _ -> None
  in
  unwind plan []

let rec size = function
  | Root | Context -> 0
  | Step (base, s) ->
    size base + 1
    + List.fold_left
        (fun acc p -> match p with Exists sub -> acc + size sub | Value_pred _ | Position _ -> acc)
        0 s.predicates
  | Tpm (base, _) -> size base + 1
  | Union (a, b) -> size a + size b + 1

let rec tpm_count = function
  | Root | Context -> 0
  | Step (base, s) ->
    tpm_count base
    + List.fold_left
        (fun acc p ->
          match p with Exists sub -> acc + tpm_count sub | Value_pred _ | Position _ -> acc)
        0 s.predicates
  | Tpm (base, _) -> tpm_count base + 1
  | Union (a, b) -> tpm_count a + tpm_count b

let pp_test ppf = function
  | Name n -> Format.pp_print_string ppf n
  | Any -> Format.pp_print_string ppf "*"
  | Text_node -> Format.pp_print_string ppf "text()"

let rec pp_predicate ppf = function
  | Value_pred p ->
    let op =
      match p.Pattern_graph.comparison with
      | Pattern_graph.Eq -> "="
      | Ne -> "!="
      | Lt -> "<"
      | Le -> "<="
      | Gt -> ">"
      | Ge -> ">="
      | Contains -> "contains"
    in
    (match p.Pattern_graph.literal with
    | Pattern_graph.Num n -> Format.fprintf ppf "[. %s %g]" op n
    | Pattern_graph.Str s -> Format.fprintf ppf "[. %s %S]" op s)
  | Exists sub -> Format.fprintf ppf "[%a]" pp sub
  | Position k -> Format.fprintf ppf "[%d]" k

and pp_step ppf s =
  (match s.axis with
  | Axis.Child -> Format.fprintf ppf "/"
  | Axis.Descendant -> Format.fprintf ppf "//"
  | Axis.Attribute -> Format.fprintf ppf "/@"
  | other -> Format.fprintf ppf "/%s::" (Axis.to_string other));
  pp_test ppf s.test;
  List.iter (pp_predicate ppf) s.predicates

and pp ppf = function
  | Root -> Format.pp_print_string ppf "root()"
  | Context -> Format.pp_print_string ppf "."
  | Step (base, s) ->
    (match base with Root -> () | other -> pp ppf other);
    pp_step ppf s
  | Tpm (base, pattern) ->
    (match base with Root -> () | other -> pp ppf other);
    Format.fprintf ppf "tpm(%a)" Pattern_graph.pp pattern
  | Union (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b

let op_label = function
  | Root -> "root"
  | Context -> "context"
  | Union _ -> "union"
  | Tpm (_, pattern) -> Format.asprintf "tau(%dv)" (Pattern_graph.vertex_count pattern)
  | Step (_, s) -> Format.asprintf "step %a" pp_step s

let rec equal a b =
  match (a, b) with
  | Root, Root | Context, Context -> true
  | Step (b1, s1), Step (b2, s2) ->
    equal b1 b2 && s1.axis = s2.axis && s1.test = s2.test
    && List.length s1.predicates = List.length s2.predicates
    && List.for_all2 predicate_equal s1.predicates s2.predicates
  | Tpm (b1, p1), Tpm (b2, p2) -> equal b1 b2 && Pattern_graph.equal p1 p2
  | Union (a1, b1), Union (a2, b2) -> equal a1 a2 && equal b1 b2
  | (Root | Context | Step _ | Tpm _ | Union _), _ -> false

and predicate_equal p1 p2 =
  match (p1, p2) with
  | Value_pred a, Value_pred b -> a = b
  | Position a, Position b -> a = b
  | Exists a, Exists b -> equal a b
  | (Value_pred _ | Position _ | Exists _), _ -> false

(* An injective textual encoding: every constructor gets a distinct tag
   and every variable-length field is delimited, so distinct plans cannot
   collide. [pp] is unsuitable as a key — it drops bases and renders
   distinct literals identically ([%g]). *)
let fingerprint plan =
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  let add_test = function
    | Name n -> add (Printf.sprintf "n%S" n)
    | Any -> add "*"
    | Text_node -> add "#"
  in
  let add_value_pred p =
    (match p.Pattern_graph.comparison with
    | Pattern_graph.Eq -> add "eq"
    | Ne -> add "ne"
    | Lt -> add "lt"
    | Le -> add "le"
    | Gt -> add "gt"
    | Ge -> add "ge"
    | Contains -> add "ct");
    match p.Pattern_graph.literal with
    | Pattern_graph.Num n -> add (Printf.sprintf "n%h" n)
    | Pattern_graph.Str s -> add (Printf.sprintf "s%S" s)
  in
  let rec go = function
    | Root -> add "R"
    | Context -> add "C"
    | Step (base, s) ->
      add "S(";
      go base;
      add ";";
      add (Axis.to_string s.axis);
      add ":";
      add_test s.test;
      List.iter add_pred s.predicates;
      add ")"
    | Tpm (base, pattern) ->
      add "T(";
      go base;
      add ";";
      add (Pattern_graph.fingerprint pattern);
      add ")"
    | Union (a, b) ->
      add "U(";
      go a;
      add ",";
      go b;
      add ")"
  and add_pred = function
    | Value_pred p ->
      add "[v";
      add_value_pred p;
      add "]"
    | Exists sub ->
      add "[e";
      go sub;
      add "]"
    | Position k -> add (Printf.sprintf "[p%d]" k)
  in
  go plan;
  Buffer.contents buf

let compare a b = String.compare (fingerprint a) (fingerprint b)
