(** Logical rewrite rules.

    - R0 ({!simplify}): axis normalization —
      [descendant-or-self::*/child::t] becomes [descendant::t], redundant
      [self::*] steps are dropped.
    - R1/R2 ({!fuse}): maximal runs of local/descendant steps, together
      with their value predicates and existential (branch) predicates, are
      fused into a single τ operator over a pattern graph. This turns a
      pipeline of πs/σs/σv operators (or a cascade of structural joins)
      into one tree-pattern-match — the paper's central optimization
      (§3.2: "a single operator to implement the list comprehension as a
      whole").

    {!optimize} applies both. Rewrites preserve results: tested by
    differential execution on random documents. *)

val simplify : Logical_plan.t -> Logical_plan.t
val fuse : Logical_plan.t -> Logical_plan.t
val optimize : Logical_plan.t -> Logical_plan.t

(** {2 Rewrite tracing}

    Each rule application records the stage it fired in ([simplify] or
    [fuse]), the rule name, and the operator count of the rewritten
    fragment before and after. Tracing costs one ref read per rule site
    when off; the traced entry points produce identical plans. *)

type rule_fire = {
  stage : string;        (** ["simplify"] or ["fuse"] *)
  rule : string;         (** e.g. ["fuse-steps-into-tau"] *)
  before_ops : int;      (** operator count of the fragment rewritten *)
  after_ops : int;       (** operator count of the replacement *)
}

val simplify_traced : Logical_plan.t -> Logical_plan.t * rule_fire list
val optimize_traced : Logical_plan.t -> Logical_plan.t * rule_fire list
(** Same result as {!simplify}/{!optimize}, plus the rule fires in
    application order. *)

val op_count : Logical_plan.t -> int
(** Number of plan operators, counting nested existential predicates. *)

val pp_rule_fire : Format.formatter -> rule_fire -> unit

val pattern_of_steps : Logical_plan.step list -> Pattern_graph.t option
(** Build the pattern graph for a fusible step chain ([None] when some
    step cannot be expressed as a pattern vertex: non-downward axis,
    [text()] test, or positional predicate). The last spine vertex is the
    output. *)
