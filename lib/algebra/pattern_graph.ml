module Doc = Xqp_xml.Document

type rel = Child | Descendant | Attribute | Following_sibling
type comparison = Eq | Ne | Lt | Le | Gt | Ge | Contains
type literal = Num of float | Str of string
type predicate = { comparison : comparison; literal : literal }
type label = Wildcard | Tag of string
type vertex = { label : label; predicates : predicate list; output : bool }

type t = {
  vertices : vertex array;
  arc_list : (int * int * rel) list;
  children : (int * rel) list array; (* adjacency, insertion order *)
  parents : (int * rel) option array;
}

let make ~vertices ~arcs =
  let n = Array.length vertices in
  if n = 0 then invalid_arg "Pattern_graph.make: no vertices";
  let children = Array.make n [] in
  let parents = Array.make n None in
  List.iter
    (fun (s, t, rel) ->
      if s < 0 || s >= n || t < 0 || t >= n then invalid_arg "Pattern_graph.make: bad arc";
      if parents.(t) <> None then invalid_arg "Pattern_graph.make: vertex has two parents";
      if t = 0 then invalid_arg "Pattern_graph.make: arc into the context vertex";
      parents.(t) <- Some (s, rel);
      children.(s) <- children.(s) @ [ (t, rel) ])
    arcs;
  (* Connectivity and acyclicity: every non-context vertex must reach 0. *)
  Array.iteri
    (fun v _ ->
      if v <> 0 then begin
        let rec climb u steps =
          if steps > n then invalid_arg "Pattern_graph.make: cycle"
          else
            match parents.(u) with
            | None -> if u <> 0 then invalid_arg "Pattern_graph.make: disconnected vertex"
            | Some (p, _) -> climb p (steps + 1)
        in
        climb v 0
      end)
    vertices;
  if not (Array.exists (fun v -> v.output) vertices) then
    invalid_arg "Pattern_graph.make: no output vertex";
  if vertices.(0).output then invalid_arg "Pattern_graph.make: context vertex cannot be output";
  { vertices; arc_list = arcs; children; parents }

let vertex_count t = Array.length t.vertices
let vertex t v = t.vertices.(v)
let children t v = t.children.(v)
let parent t v = t.parents.(v)
let root (_ : t) = 0

let outputs t =
  let acc = ref [] in
  Array.iteri (fun v vx -> if vx.output then acc := v :: !acc) t.vertices;
  List.rev !acc

let arcs t = t.arc_list

let is_nok t =
  List.for_all
    (fun (_, _, rel) ->
      match rel with Child | Attribute | Following_sibling -> true | Descendant -> false)
    t.arc_list

let vertex_path t v =
  let rec up v acc =
    match t.parents.(v) with
    | None -> acc
    | Some (p, rel) -> up p ((rel, t.vertices.(v).label) :: acc)
  in
  up v []

let vertices_in_document_order t =
  let rec walk v acc = List.fold_left (fun acc (c, _) -> walk c acc) (v :: acc) t.children.(v) in
  List.rev (walk 0 [])

let label_matches doc label node =
  match label with
  | Wildcard -> (
    match Doc.kind doc node with
    | Doc.Element | Doc.Attribute -> true
    | Doc.Text | Doc.Comment | Doc.Pi -> false)
  | Tag name -> (
    match Doc.kind doc node with
    | Doc.Element | Doc.Attribute -> String.equal (Doc.name doc node) name
    | Doc.Text | Doc.Comment | Doc.Pi -> false)

let predicate_holds doc pred node =
  let value = Doc.typed_value doc node in
  let compare_result =
    match pred.literal with
    | Num n -> (
      match float_of_string_opt (String.trim value) with
      | Some v -> Some (Float.compare v n)
      | None -> None)
    | Str s -> Some (String.compare value s)
  in
  match pred.comparison with
  | Contains -> (
    match pred.literal with
    | Str needle ->
      let hl = String.length value and nl = String.length needle in
      let rec scan i = i + nl <= hl && (String.equal (String.sub value i nl) needle || scan (i + 1)) in
      nl = 0 || scan 0
    | Num _ -> false)
  | Eq -> ( match compare_result with Some c -> c = 0 | None -> false)
  | Ne -> ( match compare_result with Some c -> c <> 0 | None -> true)
  | Lt -> ( match compare_result with Some c -> c < 0 | None -> false)
  | Le -> ( match compare_result with Some c -> c <= 0 | None -> false)
  | Gt -> ( match compare_result with Some c -> c > 0 | None -> false)
  | Ge -> ( match compare_result with Some c -> c >= 0 | None -> false)

let vertex_matches doc t v node =
  let vx = t.vertices.(v) in
  let kind_ok =
    match t.parents.(v) with
    | Some (_, Attribute) -> Doc.kind doc node = Doc.Attribute
    | Some (_, (Child | Descendant | Following_sibling)) -> Doc.kind doc node = Doc.Element
    | None -> true (* context vertex: bound, not tested *)
  in
  kind_ok
  && label_matches doc vx.label node
  && List.for_all (fun pred -> predicate_holds doc pred node) vx.predicates

let path steps =
  if steps = [] then invalid_arg "Pattern_graph.path: empty";
  let n = List.length steps in
  let vertices =
    Array.make (n + 1) { label = Wildcard; predicates = []; output = false }
  in
  let arcs = ref [] in
  List.iteri
    (fun i (rel, label, predicates) ->
      vertices.(i + 1) <- { label; predicates; output = i = n - 1 };
      arcs := (i, i + 1, rel) :: !arcs)
    steps;
  make ~vertices ~arcs:(List.rev !arcs)

let pp_label ppf = function
  | Wildcard -> Format.pp_print_string ppf "*"
  | Tag name -> Format.pp_print_string ppf name

let pp_rel ppf = function
  | Child -> Format.pp_print_string ppf "/"
  | Descendant -> Format.pp_print_string ppf "//"
  | Attribute -> Format.pp_print_string ppf "/@"
  | Following_sibling -> Format.pp_print_string ppf "/fs::"

let pp_predicate ppf pred =
  let op =
    match pred.comparison with
    | Eq -> "="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | Contains -> "contains"
  in
  match pred.literal with
  | Num n -> Format.fprintf ppf "[. %s %g]" op n
  | Str s -> Format.fprintf ppf "[. %s %S]" op s

let pp ppf t =
  let rec render ppf v =
    let vx = t.vertices.(v) in
    pp_label ppf vx.label;
    List.iter (pp_predicate ppf) vx.predicates;
    if vx.output then Format.pp_print_string ppf "{out}";
    List.iter
      (fun (c, rel) ->
        Format.fprintf ppf "[%a%a]" pp_rel rel render c)
      t.children.(v)
  in
  match t.children.(0) with
  | [ (only, rel) ] ->
    (* Common case: single spine below the context vertex. *)
    Format.fprintf ppf "%a%a" pp_rel rel render only
  | _ -> render ppf 0

let equal a b =
  a.vertices = b.vertices && a.arc_list = b.arc_list

let fingerprint t =
  let buf = Buffer.create 64 in
  let add = Buffer.add_string buf in
  let add_label = function
    | Wildcard -> add "*"
    | Tag name -> add (Printf.sprintf "t%S" name)
  in
  let add_pred p =
    (match p.comparison with
    | Eq -> add "eq"
    | Ne -> add "ne"
    | Lt -> add "lt"
    | Le -> add "le"
    | Gt -> add "gt"
    | Ge -> add "ge"
    | Contains -> add "ct");
    match p.literal with
    | Num n -> add (Printf.sprintf "n%h" n)
    | Str s -> add (Printf.sprintf "s%S" s)
  in
  Array.iter
    (fun vx ->
      add "v(";
      add_label vx.label;
      List.iter add_pred vx.predicates;
      if vx.output then add "!";
      add ")")
    t.vertices;
  List.iter
    (fun (s, d, rel) ->
      let r =
        match rel with Child -> "c" | Descendant -> "d" | Attribute -> "@" | Following_sibling -> "f"
      in
      add (Printf.sprintf "a(%d,%d,%s)" s d r))
    t.arc_list;
  Buffer.contents buf
