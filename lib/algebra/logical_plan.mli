(** Logical plans for path expressions.

    A plan is a chain of navigation/selection operators over a base
    ([Root] — the document root — or [Context], the externally-supplied
    context sequence). [Step] combines πs (axis navigation) with σs (name
    test) and σv / existential predicates; [Tpm] is the τ operator applied
    to a fused pattern graph. The {!Rewrite} module turns step chains into
    [Tpm] nodes (rules R1/R2) — the optimization at the heart of the
    paper's hybrid proposal. *)

type node_test =
  | Name of string  (** element/attribute name test *)
  | Any             (** [*] *)
  | Text_node       (** [text()] *)

type predicate =
  | Value_pred of Pattern_graph.predicate  (** [. op literal] *)
  | Exists of t                            (** relative path is non-empty *)
  | Position of int                        (** 1-based positional predicate *)

and step = { axis : Axis.t; test : node_test; predicates : predicate list }

and t =
  | Root
  | Context
  | Step of t * step
  | Tpm of t * Pattern_graph.t
  | Union of t * t  (** node-set union, document order, duplicates removed *)

val step : ?predicates:predicate list -> Axis.t -> node_test -> step

val of_steps : base:t -> step list -> t
(** Chain steps left to right onto [base]. *)

val steps_of : t -> (t * step list) option
(** Decompose a pure step chain back into (base, steps); [None] when the
    plan contains a [Tpm] or the base is itself compound. *)

val size : t -> int
(** Number of operators (steps and τ nodes). *)

val tpm_count : t -> int

val op_label : t -> string
(** Short label for the plan's {e top} operator only (["root"],
    ["step /name"], ["tau(3v)"], ["union"]) — used as the span name and
    profile-row label for that operator. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val fingerprint : t -> string
(** Stable injective serialization of the plan's structure (including
    nested pattern graphs via {!Pattern_graph.fingerprint}): two plans
    have the same fingerprint exactly when {!equal} holds (up to the
    textual representation of float literals). Plan caches key on this;
    {!pp} is for humans and is not injective. *)

val compare : t -> t -> int
(** Total order on plans via {!fingerprint}; [compare a b = 0] iff the
    fingerprints coincide. *)
