#!/bin/sh
# Corpus smoke test: pack a sharded corpus catalog, query it through the
# CLI (XPath, JSON response shape, per-document XQuery), fsck it clean,
# require fsck to flag a corrupted shard, then boot `xqp serve` on the
# catalog and check /query, /health, /metrics (corpus.* family) and
# /debug/queries — ending in a clean SIGTERM drain. Exits non-zero on
# any mismatch.
set -e
dir=$(mktemp -d)
trap 'rm -rf "$dir"; [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true' EXIT

dune build bin/xqp.exe
xqp=_build/default/bin/xqp.exe

# pack: a mixed generated corpus into 3 shards + catalog
"$xqp" pack --corpus -g auction:120 -g auction:80:7 -g bib:6 -g chain:50 \
    --shards 3 -o "$dir/corpus.xqdbc" > "$dir/pack.log"
grep -q '4 documents in 3 shards' "$dir/pack.log" || {
  echo "corpus-smoke: bad pack output"; cat "$dir/pack.log"; exit 1; }
for shard in corpus.shard000.xqdb corpus.shard001.xqdb corpus.shard002.xqdb; do
  [ -f "$dir/$shard" ] || { echo "corpus-smoke: $shard missing"; exit 1; }
done

# query the catalog: scatter-gather XPath, the serve JSON schema, XQuery
"$xqp" query -f "$dir/corpus.xqdbc" --domains 2 "//person/name" > "$dir/q1.txt"
grep -q 'nodes)' "$dir/q1.txt" || {
  echo "corpus-smoke: XPath over catalog failed"; cat "$dir/q1.txt"; exit 1; }
"$xqp" query -f "$dir/corpus.xqdbc" --json "//book/title" > "$dir/q2.json"
grep -q '"status":"ok"' "$dir/q2.json" || {
  echo "corpus-smoke: JSON response not ok"; cat "$dir/q2.json"; exit 1; }
grep -q '<title>' "$dir/q2.json" || {
  echo "corpus-smoke: //book/title found no titles"; cat "$dir/q2.json"; exit 1; }
"$xqp" query -f "$dir/corpus.xqdbc" -x "count(//item)" > "$dir/q3.txt"
grep -q 'items)' "$dir/q3.txt" || {
  echo "corpus-smoke: corpus XQuery failed"; cat "$dir/q3.txt"; exit 1; }

# fsck: the packed catalog is clean; a corrupted shard must be flagged
"$xqp" fsck "$dir/corpus.xqdbc" | grep -q 'clean' || {
  echo "corpus-smoke: packed catalog not clean"; exit 1; }
cp "$dir/corpus.shard000.xqdb" "$dir/shard.bak"
printf '\377\377\377\377' | dd of="$dir/corpus.shard000.xqdb" bs=1 seek=200 conv=notrunc 2>/dev/null
if "$xqp" fsck "$dir/corpus.xqdbc" > "$dir/fsck.log" 2>&1; then
  echo "corpus-smoke: fsck accepted a corrupted shard"; cat "$dir/fsck.log"; exit 1
fi
grep -q 'error' "$dir/fsck.log" || {
  echo "corpus-smoke: fsck failed without diagnostics"; cat "$dir/fsck.log"; exit 1; }
cp "$dir/shard.bak" "$dir/corpus.shard000.xqdb"
"$xqp" fsck "$dir/corpus.xqdbc" > /dev/null || {
  echo "corpus-smoke: restored catalog not clean"; exit 1; }

# serve over the catalog — the session API is the same, so every
# endpoint must answer unchanged
"$xqp" serve -f "$dir/corpus.xqdbc" --port 0 --domains 2 > "$dir/serve.log" 2>&1 &
pid=$!
port=""
for _ in $(seq 1 50); do
  port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$dir/serve.log")
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || {
    echo "corpus-smoke: server died at startup"; cat "$dir/serve.log"; exit 1; }
  sleep 0.2
done
[ -n "$port" ] || { echo "corpus-smoke: no listening line"; cat "$dir/serve.log"; exit 1; }
base="http://127.0.0.1:$port"

curl -sf "$base/health" | grep -q '"status":"ok"' || {
  echo "corpus-smoke: bad /health"; exit 1; }
curl -sf -G "$base/query" --data-urlencode "q=//person/name" > "$dir/sq.json"
grep -q '"status":"ok"' "$dir/sq.json" || {
  echo "corpus-smoke: served query not ok"; cat "$dir/sq.json"; exit 1; }
curl -sf "$base/query?q=count(//person)&mode=xquery" | grep -q '"status":"ok"' || {
  echo "corpus-smoke: served corpus xquery failed"; exit 1; }

# metrics: the corpus.* family must be exposed alongside serve.*
curl -sf "$base/metrics" > "$dir/metrics.txt"
for m in xqp_corpus_shards_dispatched_total xqp_corpus_shards_pruned_total \
         xqp_corpus_docs_materialized_total xqp_serve_requests_total; do
  grep -q "$m" "$dir/metrics.txt" || {
    echo "corpus-smoke: $m missing from /metrics"; exit 1; }
done

curl -sf "$base/debug/queries?k=5" | grep -q '"query":"//person/name"' || {
  echo "corpus-smoke: //person/name missing from /debug/queries"; exit 1; }

# graceful shutdown
kill -TERM "$pid"
for _ in $(seq 1 50); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$pid" 2>/dev/null; then
  echo "corpus-smoke: server did not exit after SIGTERM"; exit 1
fi
grep -q 'stopped' "$dir/serve.log" || {
  echo "corpus-smoke: no clean shutdown line"; cat "$dir/serve.log"; exit 1; }
pid=""

echo "corpus-smoke: pack + catalog queries + fsck + corpus serve + metrics + graceful shutdown OK"
