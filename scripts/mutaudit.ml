(* mutaudit: stand-alone domain-safety audit (the CI entry point).

   Usage: mutaudit [--strict] [--no-stale] [DIR ...]   (default: lib)

   Scans every .ml under the given directories with
   Xqp_analysis.Domain_check, prints the full diagnostic report and
   exits non-zero when it contains errors (with --strict: warnings
   too). Same pass as `xqp lint --domains`, without needing a
   workload or a built store. *)

let () =
  let strict = ref false in
  let stale = ref true in
  let dirs = ref [] in
  Arg.parse
    [
      ("--strict", Arg.Set strict, " fail on warnings as well as errors");
      ("--no-stale", Arg.Clear stale, " do not warn about table rows matching no site");
    ]
    (fun d -> dirs := d :: !dirs)
    "mutaudit [--strict] [--no-stale] [DIR ...]";
  let dirs = match List.rev !dirs with [] -> [ "lib" ] | ds -> ds in
  let diags = Xqp_analysis.Domain_check.audit ~stale:!stale dirs in
  let module D = Xqp_analysis.Diagnostic in
  if diags = [] then
    Format.printf "mutaudit: no toplevel mutable state outside the annotation table (%s)@."
      (String.concat " " dirs)
  else Format.printf "%a" D.pp_report diags;
  let failed =
    D.has_errors diags || (!strict && List.exists (fun d -> d.D.severity = D.Warning) diags)
  in
  exit (if failed then 1 else 0)
