(* check_trace FILE.json — structural validator for the Chrome trace_event
   exports written by `xqp explain --analyze --trace-out`.

   Checks, in order:
   - the file parses as JSON and has the Object Format shape
     ({"traceEvents": [...]});
   - every event is an object with "name"/"ph"/"pid"/"tid", and every
     "X" event carries numeric "ts"/"dur" >= 0 and span args;
   - span ids are unique, parents reference earlier spans (or -1), and a
     child's depth is parent depth + 1;
   - child intervals nest inside their parent's interval (1us slack for
     float rounding);
   - the export round-trips through Xqp_obs.Export.of_chrome_json.

   Exit 0 and a one-line summary when clean; exit 1 with one line per
   problem otherwise. *)

module J = Xqp_obs.Json
module Export = Xqp_obs.Export
module Trace = Xqp_obs.Trace

let errors = ref 0

let fail fmt =
  incr errors;
  Printf.eprintf "check_trace: ";
  Printf.kfprintf (fun oc -> output_char oc '\n') stderr fmt

let check_event i json =
  match json with
  | J.Obj fields ->
    let str name =
      match List.assoc_opt name fields with Some (J.Str s) -> Some s | _ -> None
    in
    let num name =
      match List.assoc_opt name fields with Some (J.Num n) -> Some n | _ -> None
    in
    if str "name" = None then fail "event %d: missing \"name\"" i;
    (match str "ph" with
    | None -> fail "event %d: missing \"ph\"" i
    | Some "M" -> ()
    | Some "X" ->
      (match num "ts" with
      | Some ts when ts >= 0.0 -> ()
      | Some _ -> fail "event %d: negative \"ts\"" i
      | None -> fail "event %d: \"X\" event without numeric \"ts\"" i);
      (match num "dur" with
      | Some dur when dur >= 0.0 -> ()
      | Some _ -> fail "event %d: negative \"dur\"" i
      | None -> fail "event %d: \"X\" event without numeric \"dur\"" i);
      (match List.assoc_opt "args" fields with
      | Some (J.Obj args) ->
        List.iter
          (fun key ->
            match List.assoc_opt key args with
            | Some (J.Num _) -> ()
            | Some _ -> fail "event %d: args.%s is not a number" i key
            | None -> fail "event %d: missing args.%s" i key)
          [ "span_id"; "span_parent"; "span_depth" ]
      | Some _ | None -> fail "event %d: \"X\" event without an args object" i)
    | Some ph -> fail "event %d: unexpected phase %S" i ph);
    if num "pid" = None then fail "event %d: missing \"pid\"" i;
    if num "tid" = None then fail "event %d: missing \"tid\"" i
  | _ -> fail "event %d: not an object" i

let check_tree events =
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      if Hashtbl.mem by_id e.Trace.id then fail "span id %d is not unique" e.Trace.id
      else Hashtbl.add by_id e.Trace.id e)
    events;
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.t1 < e.Trace.t0 then fail "span %d: t1 < t0" e.Trace.id;
      if e.Trace.parent = -1 then begin
        if e.Trace.depth <> 0 then fail "span %d: root span with depth %d" e.Trace.id e.Trace.depth
      end
      else
        match Hashtbl.find_opt by_id e.Trace.parent with
        | None -> fail "span %d: parent %d not in the trace" e.Trace.id e.Trace.parent
        | Some p ->
          if p.Trace.id >= e.Trace.id then
            fail "span %d: parent %d does not precede it" e.Trace.id p.Trace.id;
          if e.Trace.depth <> p.Trace.depth + 1 then
            fail "span %d: depth %d but parent depth %d" e.Trace.id e.Trace.depth p.Trace.depth;
          (* 1us slack: timestamps round to 0.001us in the export *)
          let slack = 1e-6 in
          if e.Trace.t0 +. slack < p.Trace.t0 || e.Trace.t1 > p.Trace.t1 +. slack then
            fail "span %d: interval [%f, %f] outside parent %d's [%f, %f]" e.Trace.id e.Trace.t0
              e.Trace.t1 p.Trace.id p.Trace.t0 p.Trace.t1)
    events

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: check_trace FILE.json";
      exit 2
  in
  let text = In_channel.with_open_text path In_channel.input_all in
  (match J.parse text with
  | exception J.Parse_error m -> fail "%s: JSON parse error: %s" path m
  | J.Obj fields as json -> (
    (match List.assoc_opt "traceEvents" fields with
    | Some (J.Arr events) -> List.iteri check_event events
    | Some _ -> fail "%s: \"traceEvents\" is not an array" path
    | None -> fail "%s: no \"traceEvents\" field" path);
    if !errors = 0 then
      match Export.of_chrome_json (J.to_string json) with
      | exception Failure m -> fail "%s: does not round-trip: %s" path m
      | events ->
        check_tree events;
        if !errors = 0 then
          Printf.printf "%s: ok (%d spans)\n" path (List.length events))
  | _ -> fail "%s: top level is not an object" path);
  exit (if !errors = 0 then 0 else 1)
