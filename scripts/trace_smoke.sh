#!/bin/sh
# Observability smoke test: run `explain --analyze` over every workload
# XPath query, export the combined Chrome trace, and validate it with the
# structural checker. Exits non-zero if any query fails to analyze, the
# per-operator table is missing, or the trace file does not validate.
set -e
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

run() { dune exec --no-print-directory bin/xqp.exe -- "$@"; }

out="$dir/explain.txt"
run explain -g auction:600 --analyze --rewrites --workload \
  --trace-out "$dir/trace.json" > "$out"

# every workload query produced an analyzed operator table and a result line
queries=$(grep -c '^=== ' "$out")
tables=$(grep -c '^operators:' "$out")
results=$(grep -c '^result:' "$out")
[ "$queries" -ge 13 ] || { echo "trace-smoke: expected >= 13 queries, saw $queries"; exit 1; }
[ "$tables" = "$queries" ] || { echo "trace-smoke: $tables operator tables for $queries queries"; exit 1; }
[ "$results" = "$queries" ] || { echo "trace-smoke: $results result lines for $queries queries"; exit 1; }
# pager I/O attribution: force a query through the store-backed NoK
# engine (the cost model is free to prefer in-memory engines otherwise)
nok_out="$dir/explain_nok.txt"
run explain -g auction:600 --analyze -e nok \
  "//person[profile/@income > 60000]/name" > "$nok_out"
grep -q 'pager\.' "$nok_out" || { echo "trace-smoke: no pager I/O attributed to any operator"; exit 1; }

dune exec --no-print-directory scripts/check_trace.exe -- "$dir/trace.json"

echo "trace-smoke: explain --analyze + trace export OK"
