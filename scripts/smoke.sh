#!/bin/sh
# End-to-end smoke test of the xqp CLI: generate -> validate -> index ->
# query (xml and .xqdb) -> pages -> explain -> xquery. Exits non-zero on
# any mismatch.
set -e
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

run() { dune exec --no-print-directory bin/xqp.exe -- "$@"; }

run generate bib:25 -o "$dir/bib.xml" > /dev/null
run validate "$dir/bib.xml" | grep -q "well-formed"
run index -f "$dir/bib.xml" -o "$dir/bib.xqdb" > /dev/null

xml_count=$(run query -f "$dir/bib.xml" "//book[price > 50]/title" | tail -1)
db_count=$(run query -f "$dir/bib.xqdb" "//book[price > 50]/title" | tail -1)
[ "$xml_count" = "$db_count" ] || { echo "xml vs xqdb mismatch: $xml_count / $db_count"; exit 1; }

base_count=$(run query -f "$dir/bib.xml" -e reference "//book[author]/title" | tail -1)
for engine in navigation nok pathstack twigstack binary-default binary-best auto; do
  c=$(run query -f "$dir/bib.xml" -e "$engine" "//book[author]/title" | tail -1)
  [ "$c" = "$base_count" ] || { echo "engine $engine disagrees: $c vs $base_count"; exit 1; }
done

run pages -f "$dir/bib.xqdb" "/bib/book/title" | grep -q "cold run"
run explain -f "$dir/bib.xml" "//book[author]/title" | grep -q "chosen engine"
run explain -f "$dir/bib.xml" "//book[author]/title" | grep -q "physical plan:"

# plan cache: the same query twice in one invocation — second must hit
cache_out=$(run explain --analyze -f "$dir/bib.xml" "//book[price > 50]/title" "//book[price > 50]/title")
echo "$cache_out" | grep -q "plan cache:      miss" || { echo "first explain should miss"; exit 1; }
echo "$cache_out" | grep -q "plan cache:      hit" || { echo "second explain should hit"; exit 1; }
run explain --no-cache -f "$dir/bib.xml" "//book/title" | grep -q "plan cache:      bypassed"
run query -x -f "$dir/bib.xml" '<n>{ count(//book) }</n>' | grep -q "<n>25</n>"
run stats -f "$dir/bib.xml" | grep -q "succinct store"

echo "smoke: all CLI paths OK"
