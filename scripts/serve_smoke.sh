#!/bin/sh
# Server smoke test: boot `xqp serve` on an ephemeral port, probe
# /health, fire a batch of concurrent /query clients (responses must all
# be identical and well-formed), scrape /metrics for the serve.* family,
# then SIGTERM and require a clean drain-and-exit. Exits non-zero on any
# wrong response, a missing metric, or a hung shutdown.
set -e
dir=$(mktemp -d)
trap 'rm -rf "$dir"; [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true' EXIT

dune build bin/xqp.exe
xqp=_build/default/bin/xqp.exe

"$xqp" serve -g auction:300 --port 0 --domains 2 --queue 32 > "$dir/serve.log" 2>&1 &
pid=$!

# wait for the listening line and scrape the ephemeral port from it
port=""
for _ in $(seq 1 50); do
  port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$dir/serve.log")
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: server died at startup"; cat "$dir/serve.log"; exit 1; }
  sleep 0.2
done
[ -n "$port" ] || { echo "serve-smoke: no listening line"; cat "$dir/serve.log"; exit 1; }

base="http://127.0.0.1:$port"

# health probe
health=$(curl -sf "$base/health")
echo "$health" | grep -q '"status":"ok"' || { echo "serve-smoke: bad /health: $health"; exit 1; }

# concurrent client batch: identical queries must produce identical ok
# responses (wait only on the curls — a bare `wait` would block on the
# server job too)
n=8
cpids=""
for i in $(seq 1 $n); do
  curl -sf -G "$base/query" --data-urlencode "q=//person/name" > "$dir/r$i.json" &
  cpids="$cpids $!"
done
for p in $cpids; do
  wait "$p" || { echo "serve-smoke: a concurrent client failed"; exit 1; }
done
# per-call fields (time_ms, plan-cache hit/miss, request provenance)
# legitimately vary; the query, results and engine must not
strip() { sed -e 's/"time_ms":[0-9.]*//' -e 's/"cache":"[a-z]*"//' \
              -e 's/"request_id":"[^"]*"//' -e 's/"queue_ms":[0-9.]*//' "$1"; }
for i in $(seq 1 $n); do
  grep -q '"status":"ok"' "$dir/r$i.json" || { echo "serve-smoke: client $i not ok"; cat "$dir/r$i.json"; exit 1; }
  strip "$dir/r1.json" > "$dir/want.stripped"
  strip "$dir/r$i.json" > "$dir/got.stripped"
  cmp -s "$dir/want.stripped" "$dir/got.stripped" || {
    echo "serve-smoke: client $i answer differs"; exit 1; }
done

# request ids: the X-Request-Id header must echo the body's request_id
curl -sf -D "$dir/hdrs.txt" -G "$base/query" --data-urlencode "q=//person/name" > "$dir/rid.json"
hdr_id=$(sed -n 's/^[Xx]-[Rr]equest-[Ii]d: *\(r-[0-9]*\).*/\1/p' "$dir/hdrs.txt")
[ -n "$hdr_id" ] || { echo "serve-smoke: no X-Request-Id header"; cat "$dir/hdrs.txt"; exit 1; }
grep -q "\"request_id\":\"$hdr_id\"" "$dir/rid.json" || {
  echo "serve-smoke: X-Request-Id $hdr_id does not match body"; cat "$dir/rid.json"; exit 1; }

# flight recorder: /debug/queries must show the fingerprint the batch ran
curl -sf "$base/debug/queries?k=5" > "$dir/debug.json"
grep -q '"query":"//person/name"' "$dir/debug.json" || {
  echo "serve-smoke: //person/name missing from /debug/queries"; cat "$dir/debug.json"; exit 1; }
grep -q '"count":' "$dir/debug.json" || { echo "serve-smoke: /debug/queries lacks counts"; exit 1; }

# an XQuery request and a structured error response
curl -sf "$base/query?q=count(//person)&mode=xquery" | grep -q '"status":"ok"' \
  || { echo "serve-smoke: xquery request failed"; exit 1; }
curl -s "$base/query" | grep -q '"code":"bad-request"' \
  || { echo "serve-smoke: missing-q did not produce a structured error"; exit 1; }

# metrics scrape: prometheus text format with the serve.* family
curl -sf "$base/metrics" > "$dir/metrics.txt"
grep -q '^# TYPE' "$dir/metrics.txt" || { echo "serve-smoke: no TYPE lines in /metrics"; exit 1; }
grep -q '^# HELP' "$dir/metrics.txt" || { echo "serve-smoke: no HELP lines in /metrics"; exit 1; }
for m in xqp_serve_requests_total xqp_serve_accepted_total xqp_serve_queue_depth \
         xqp_serve_latency_ms_bucket xqp_serve_domain_0_requests_total; do
  grep -q "$m" "$dir/metrics.txt" || { echo "serve-smoke: $m missing from /metrics"; exit 1; }
done

# graceful shutdown: SIGTERM must drain and exit promptly
kill -TERM "$pid"
for _ in $(seq 1 50); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$pid" 2>/dev/null; then
  echo "serve-smoke: server did not exit after SIGTERM"; exit 1
fi
grep -q 'stopped' "$dir/serve.log" || { echo "serve-smoke: no clean shutdown line"; cat "$dir/serve.log"; exit 1; }
pid=""

echo "serve-smoke: health + concurrent queries + request ids + flight recorder + metrics + graceful shutdown OK"
